"""Cap-sweep harness.

Runs any benchmark (an object with ``run(device) -> result``) across a
grid of frequency caps or power caps, always including the uncapped
baseline, and exposes normalized views — the exact procedure behind the
paper's Fig 4/5/6 panels and Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from .. import constants, units
from ..errors import CapError
from ..gpu import GPUDevice
from ..gpu.specs import MI250XSpec, default_spec


@dataclass(frozen=True)
class SweepPoint:
    """One cap setting and the benchmark result measured under it."""

    knob: str          # "frequency" | "power"
    cap: float         # MHz for frequency, W for power; 0 = uncapped
    result: object     # the benchmark's own result type

    @property
    def uncapped(self) -> bool:
        return self.cap == 0


class CapSweep:
    """Sweep one benchmark over one management knob.

    Parameters
    ----------
    benchmark:
        Any object with ``run(device)``.
    spec:
        Device specification shared by every point of the sweep.
    """

    def __init__(
        self,
        benchmark,
        spec: Optional[MI250XSpec] = None,
    ) -> None:
        self.benchmark = benchmark
        self.spec = spec if spec is not None else default_spec()

    def _run_at(self, make_device: Callable[[], GPUDevice]) -> object:
        return self.benchmark.run(make_device())

    def frequency_sweep(
        self,
        caps_mhz: Sequence[float] = constants.FREQUENCY_CAPS_MHZ,
    ) -> Dict[float, SweepPoint]:
        """Run at each frequency cap plus the uncapped baseline (key 0)."""
        points: Dict[float, SweepPoint] = {
            0: SweepPoint("frequency", 0, self._run_at(lambda: GPUDevice(self.spec)))
        }
        for cap in caps_mhz:
            if cap <= 0:
                raise CapError(f"invalid frequency cap {cap} MHz")
            result = self._run_at(
                lambda: GPUDevice(self.spec, frequency_cap_hz=units.mhz(cap))
            )
            points[cap] = SweepPoint("frequency", float(cap), result)
        return points

    def power_sweep(
        self,
        caps_w: Sequence[float] = constants.POWER_CAPS_W,
    ) -> Dict[float, SweepPoint]:
        """Run at each power cap plus the uncapped baseline (key 0)."""
        points: Dict[float, SweepPoint] = {
            0: SweepPoint("power", 0, self._run_at(lambda: GPUDevice(self.spec)))
        }
        for cap in caps_w:
            if cap <= 0:
                raise CapError(f"invalid power cap {cap} W")
            result = self._run_at(
                lambda: GPUDevice(self.spec, power_cap_w=float(cap))
            )
            points[cap] = SweepPoint("power", float(cap), result)
        return points
