"""Cap-sweep harnesses.

Two ways to run a benchmark across a grid of management-knob settings,
always including the uncapped baseline — the exact procedure behind the
paper's Fig 4/5/6 panels and Table III:

* :class:`GridSweep` — the batched engine.  It packs the benchmark's
  kernels once (struct-of-arrays), tiles them across the cap axis, and
  evaluates the whole cap x kernel cross-product with **one**
  :meth:`~repro.gpu.GPUDevice.run_batch` call: single NumPy passes for
  frequency caps, one lock-stepped vectorized bisection for power caps.
* :class:`CapSweep` — the original benchmark-facing harness.  For
  benchmarks that expose the batch protocol (``grid_kernels`` +
  ``package``) it now delegates to :class:`GridSweep`; any other
  benchmark object with ``run(device)`` still takes the point-by-point
  path, which remains the correctness oracle (``batched=False`` forces
  it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .. import constants, units
from ..errors import CapError
from ..gpu import GPUDevice
from ..obs import runtime as _obs
from ..gpu.device import BatchResult
from ..gpu.kernel import KernelBatch, KernelSpec
from ..gpu.specs import MI250XSpec, default_spec


@dataclass(frozen=True)
class SweepPoint:
    """One cap setting and the benchmark result measured under it."""

    knob: str          # "frequency" | "power"
    cap: float         # MHz for frequency, W for power; 0 = uncapped
    result: object     # the benchmark's own result type

    @property
    def uncapped(self) -> bool:
        return self.cap == 0


@dataclass(frozen=True)
class BatchGrid:
    """A cap x kernel cross-product evaluated in one batched call.

    ``result`` is the flat :class:`~repro.gpu.device.BatchResult` of
    ``len(caps) * n_kernels`` points, cap-major (all kernels at cap 0,
    then all kernels at cap 1, ...).
    """

    knob: str                  # "frequency" | "power"
    caps: tuple                # cap values as given; 0 = uncapped
    n_kernels: int
    result: BatchResult

    def row(self, cap: float) -> BatchResult:
        """The kernel-axis slice measured under one cap setting."""
        i = self.caps.index(cap)
        n = self.n_kernels
        return self.result[i * n:(i + 1) * n]

    def rows(self) -> Dict[float, BatchResult]:
        return {cap: self.row(cap) for cap in self.caps}


class GridSweep:
    """Batched sweep of a fixed kernel list over one management knob.

    Parameters
    ----------
    kernels:
        The kernel axis of the grid (e.g. one kernel per arithmetic
        intensity), shared by every cap.
    spec:
        Device specification shared by every point of the grid.
    """

    def __init__(
        self,
        kernels: Sequence[KernelSpec],
        spec: Optional[MI250XSpec] = None,
    ) -> None:
        self.spec = spec if spec is not None else default_spec()
        self.kernels = list(kernels)
        self._batch = KernelBatch.from_kernels(self.kernels)
        # Tiled cross-product batches, keyed by cap count: the frequency
        # and power sweeps of one grid share the same tiling (and hence
        # the same memoized traffic split).
        self._tiles: dict = {}

    def _cross(
        self, knob: str, caps: Sequence[float], caps_hz_or_w: np.ndarray
    ) -> BatchGrid:
        n = len(self._batch)
        reps = len(caps)
        with _obs.span("bench.grid", knob=knob, points=reps * n):
            tiled = self._tiles.get(reps)
            if tiled is None:
                tiled = self._tiles[reps] = self._batch.tile(reps)
            per_point = np.repeat(caps_hz_or_w, n)
            device = GPUDevice(self.spec)
            if knob == "frequency":
                result = device.run_batch(tiled, frequency_caps_hz=per_point)
            else:
                result = device.run_batch(tiled, power_caps_w=per_point)
        return BatchGrid(
            knob=knob, caps=tuple(caps), n_kernels=n, result=result
        )

    def frequency_sweep(
        self,
        caps_mhz: Sequence[float] = constants.FREQUENCY_CAPS_MHZ,
    ) -> BatchGrid:
        """Every frequency cap plus the uncapped baseline (cap 0)."""
        for cap in caps_mhz:
            if cap <= 0:
                raise CapError(f"invalid frequency cap {cap} MHz")
        caps = [0.0] + [float(c) for c in caps_mhz]
        caps_hz = np.array([np.nan] + [units.mhz(c) for c in caps_mhz])
        return self._cross("frequency", caps, caps_hz)

    def power_sweep(
        self,
        caps_w: Sequence[float] = constants.POWER_CAPS_W,
    ) -> BatchGrid:
        """Every power cap plus the uncapped baseline (cap 0)."""
        for cap in caps_w:
            if cap <= 0:
                raise CapError(f"invalid power cap {cap} W")
        caps = [0.0] + [float(c) for c in caps_w]
        caps_arr = np.array([np.nan] + [float(c) for c in caps_w])
        return self._cross("power", caps, caps_arr)


def _supports_batch(benchmark) -> bool:
    return hasattr(benchmark, "grid_kernels") and hasattr(benchmark, "package")


class CapSweep:
    """Sweep one benchmark over one management knob.

    Parameters
    ----------
    benchmark:
        Any object with ``run(device)``.  Benchmarks that also expose the
        batch protocol — ``grid_kernels(spec) -> [KernelSpec]`` and
        ``package(BatchResult) -> result`` — are evaluated through
        :class:`GridSweep` in one batched call per sweep.
    spec:
        Device specification shared by every point of the sweep.
    batched:
        ``None`` (default) auto-detects the batch protocol; ``False``
        forces the point-by-point scalar path (the correctness oracle
        used by the equivalence tests and timing baselines).
    """

    def __init__(
        self,
        benchmark,
        spec: Optional[MI250XSpec] = None,
        *,
        batched: Optional[bool] = None,
    ) -> None:
        self.benchmark = benchmark
        self.spec = spec if spec is not None else default_spec()
        if batched is None:
            batched = _supports_batch(benchmark)
        elif batched and not _supports_batch(benchmark):
            raise CapError(
                f"{type(benchmark).__name__} does not expose the batch "
                "protocol (grid_kernels/package)"
            )
        self.batched = batched
        self._grid: Optional[GridSweep] = None

    def _run_at(self, make_device: Callable[[], GPUDevice]) -> object:
        return self.benchmark.run(make_device())

    def _package_grid(self, grid: BatchGrid) -> Dict[float, SweepPoint]:
        return {
            (0 if cap == 0 else cap): SweepPoint(
                grid.knob, float(cap), self.benchmark.package(grid.row(cap))
            )
            for cap in grid.caps
        }

    def _grid_sweep(self) -> GridSweep:
        # The kernel axis is cap-independent, so one GridSweep (one probe
        # sizing pass, one packed batch) serves every sweep this harness runs.
        if self._grid is None:
            self._grid = GridSweep(
                self.benchmark.grid_kernels(self.spec), self.spec
            )
        return self._grid

    def frequency_sweep(
        self,
        caps_mhz: Sequence[float] = constants.FREQUENCY_CAPS_MHZ,
    ) -> Dict[float, SweepPoint]:
        """Run at each frequency cap plus the uncapped baseline (key 0)."""
        with _obs.span("bench.frequency_sweep", batched=self.batched):
            if self.batched:
                return self._package_grid(
                    self._grid_sweep().frequency_sweep(caps_mhz)
                )
            points: Dict[float, SweepPoint] = {
                0: SweepPoint("frequency", 0, self._run_at(lambda: GPUDevice(self.spec)))
            }
            for cap in caps_mhz:
                if cap <= 0:
                    raise CapError(f"invalid frequency cap {cap} MHz")
                result = self._run_at(
                    lambda: GPUDevice(self.spec, frequency_cap_hz=units.mhz(cap))
                )
                points[cap] = SweepPoint("frequency", float(cap), result)
            return points

    def power_sweep(
        self,
        caps_w: Sequence[float] = constants.POWER_CAPS_W,
    ) -> Dict[float, SweepPoint]:
        """Run at each power cap plus the uncapped baseline (key 0)."""
        with _obs.span("bench.power_sweep", batched=self.batched):
            if self.batched:
                return self._package_grid(
                    self._grid_sweep().power_sweep(caps_w)
                )
            points: Dict[float, SweepPoint] = {
                0: SweepPoint("power", 0, self._run_at(lambda: GPUDevice(self.spec)))
            }
            for cap in caps_w:
                if cap <= 0:
                    raise CapError(f"invalid power cap {cap} W")
                result = self._run_at(
                    lambda: GPUDevice(self.spec, power_cap_w=float(cap))
                )
                points[cap] = SweepPoint("power", float(cap), result)
            return points
