"""Benchmark reproducers.

These are the paper's Section III-B workloads, expressed as kernel
generators plus sweep harnesses over the two management knobs:

* :mod:`repro.bench.vai`      — Algorithm 1, the Variable Arithmetic
  Intensity roofline tracer (Fig 4, Fig 5, Table III VAI columns)
* :mod:`repro.bench.membench` — the GPU-benches L2-cache/HBM bandwidth
  benchmark (Fig 6, Table III MB columns)
* :mod:`repro.bench.ert`      — empirical roofline probes (peak flops,
  peak bandwidth, ridge point)
* :mod:`repro.bench.sweep`    — frequency-cap / power-cap sweep harness
* :mod:`repro.bench.tables`   — Table III assembly from sweep results
"""

from .vai import VAIBenchmark, vai_kernel
from .membench import MemoryBenchmark, membench_kernel
from .ert import EmpiricalRoofline, measure_roofline
from .sweep import CapSweep, SweepPoint
from .tables import Table3, compute_table3

__all__ = [
    "VAIBenchmark",
    "vai_kernel",
    "MemoryBenchmark",
    "membench_kernel",
    "EmpiricalRoofline",
    "measure_roofline",
    "CapSweep",
    "SweepPoint",
    "Table3",
    "compute_table3",
]
