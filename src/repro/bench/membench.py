"""The L2-cache / HBM memory bandwidth benchmark (GPU-benches style).

The paper's modified GPU-benches L2 kernel launches 100 000 blocks of
1 024 threads; block ``i`` streams chunk ``i % n_chunks`` of a working set
that starts at 384 KB and doubles upward (Fig 3).  Below the 16 MB L2
capacity every chunk hits in cache; above it the loads stream from HBM.
The kernel is pure loads with deep memory-level parallelism, so — unlike
VAI — its HBM-resident points are insensitive to the core clock.

This module reproduces the sweep against the simulated hierarchy and
reports bandwidth, power, and runtime per working-set size (Fig 6) plus
the HBM-region summary consumed by Table III's MB columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from .. import units
from ..errors import KernelError
from ..gpu import GPUDevice, KernelSpec
from ..gpu.device import BatchResult

#: Deep-issue character of the pure-load kernel: calibrated so a 200 W
#: power cap (which parks the core at f_min) costs ~26 % runtime, matching
#: Table III(b)'s MB row.
MEMBENCH_ISSUE_BW_FACTOR = 2.7

#: The paper's starting chunk size.
FIRST_WORKING_SET_BYTES = 384 * 1024

#: Launch geometry of the original kernel (for the docstring-faithful
#: traffic volume accounting).
BLOCKS = 100_000
THREADS_PER_BLOCK = 1024
BYTES_PER_THREAD = 8 * 16   # each thread streams 16 doubles per pass


def working_set_grid(
    n_sizes: int = 16, first_bytes: int = FIRST_WORKING_SET_BYTES
) -> List[int]:
    """The doubling working-set grid: 384 KB, 768 KB, ... (paper Fig 6)."""
    if n_sizes <= 0:
        raise KernelError("n_sizes must be positive")
    return [first_bytes * 2**k for k in range(n_sizes)]


def membench_kernel(
    working_set_bytes: float,
    *,
    passes: int = 1,
) -> KernelSpec:
    """Build the chunk-cycling load kernel over ``working_set_bytes``.

    Traffic volume follows the launch geometry (every block streams its
    chunk in full), independent of where the chunk lands in the hierarchy.
    """
    if working_set_bytes <= 0:
        raise KernelError("working set must be positive")
    if passes <= 0:
        raise KernelError("passes must be positive")
    volume = float(BLOCKS * THREADS_PER_BLOCK * BYTES_PER_THREAD) * passes
    return KernelSpec(
        name=f"membench-{working_set_bytes / units.MIB:.3g}MiB",
        flops=0.0,
        hbm_bytes=volume,
        working_set_bytes=float(working_set_bytes),
        issue_bw_factor=MEMBENCH_ISSUE_BW_FACTOR,
    )


class MemPoint(NamedTuple):
    """One working-set point of the memory sweep.

    A NamedTuple rather than a dataclass: the batched sweeps construct
    hundreds of points per grid and tuple construction is C-speed.
    """

    working_set_bytes: float
    time_s: float
    power_w: float
    energy_j: float
    gbps: float
    l2_hit_fraction: float
    cap_breached: bool


@dataclass(frozen=True)
class MemResult:
    """A full memory-benchmark sweep on one device configuration."""

    points: List[MemPoint]

    @property
    def sizes_mib(self) -> np.ndarray:
        return np.array([p.working_set_bytes / units.MIB for p in self.points])

    def column(self, name: str) -> np.ndarray:
        return np.array([getattr(p, name) for p in self.points])

    def hbm_region(self, spec) -> "MemResult":
        """Fully HBM-resident points (the Table III MB region).

        The thrash band just above L2 capacity (working sets up to 2x L2)
        is excluded: those points are partially cached and belong to
        neither regime.
        """
        return MemResult(
            [p for p in self.points if p.working_set_bytes > 2 * spec.l2_bytes]
        )

    def l2_region(self, spec) -> "MemResult":
        """Points resident in the L2 cache."""
        return MemResult(
            [p for p in self.points if p.working_set_bytes <= spec.l2_bytes]
        )

    def mean(self, name: str) -> float:
        """Time-weighted mean of a rate/power column across the sweep."""
        values = self.column(name)
        weights = self.column("time_s")
        return float(np.average(values, weights=weights))


class MemoryBenchmark:
    """Run the working-set sweep on a device."""

    def __init__(
        self,
        working_sets: Optional[Sequence[float]] = None,
        *,
        passes: int = 1,
    ) -> None:
        self.working_sets = (
            list(working_sets) if working_sets is not None else working_set_grid()
        )
        self.passes = passes

    def run(self, device: GPUDevice) -> MemResult:
        points = []
        for ws in self.working_sets:
            r = device.run(membench_kernel(ws, passes=self.passes))
            points.append(
                MemPoint(
                    working_set_bytes=float(ws),
                    time_s=r.time_s,
                    power_w=r.power_w,
                    energy_j=r.energy_j,
                    gbps=units.to_gbps(r.achieved_bw),
                    l2_hit_fraction=r.profile.traffic.l2_hit_fraction,
                    cap_breached=r.cap_breached,
                )
            )
        return MemResult(points)

    # -- batch protocol (used by repro.bench.sweep) ------------------------------

    def grid_kernels(self, spec) -> List[KernelSpec]:
        """The cap-independent kernel axis (one kernel per working set)."""
        return [
            membench_kernel(ws, passes=self.passes) for ws in self.working_sets
        ]

    def package(self, batch: BatchResult) -> MemResult:
        """Rows of a batched sweep (aligned with ``grid_kernels``) -> result."""
        cols = zip(
            (float(ws) for ws in self.working_sets),
            batch.time_s.tolist(),
            batch.power_w.tolist(),
            batch.energy_j.tolist(),
            units.to_gbps(batch.achieved_bw).tolist(),
            batch.l2_hit_fraction.tolist(),
            batch.cap_breached.tolist(),
        )
        return MemResult([MemPoint(*row) for row in cols])


def default_benchmark() -> MemoryBenchmark:
    """The paper's configuration: 384 KB doubling past the L2 capacity."""
    return MemoryBenchmark()
