"""The Variable Arithmetic Intensity (VAI) benchmark — Algorithm 1.

The paper's Algorithm 1 allocates three double arrays ``a``, ``b``, ``c``
of ``globalWIs`` elements and, per element and outer repetition, performs:

* 3 reads + 1 write  → 4 × 8 bytes of contiguous HBM traffic,
* ``2 * LOOPSIZE`` fused multiply-add flops (the unrolled inner loop).

Arithmetic intensity is therefore ``2 * LOOPSIZE / 32 = LOOPSIZE / 16``
flops per byte; ``LOOPSIZE = 1`` gives the paper's lowest point (1/16) and
``LOOPSIZE = 16384`` the highest (1024).  Intensity 0 replaces the loop
with a stream copy (1 read + 1 write, no flops).

This module reproduces that accounting *exactly* — the flop and byte
counts are architecture-independent arithmetic — and hands the resulting
:class:`~repro.gpu.kernel.KernelSpec` to the simulated device.  ``REPEAT``
extends the runtime until steady-state power can be observed, exactly as
the paper does for accurate power measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from .. import constants, units
from ..errors import KernelError
from ..gpu import GPUDevice, KernelSpec
from ..gpu.device import BatchResult
from ..gpu.kernel import KernelBatch
from ..gpu.perf import execute_batch
from ..gpu.specs import MI250XSpec

#: Bytes per element-iteration of the FMA variant (3 reads + 1 write).
BYTES_PER_ELEMENT = 4 * 8
#: Bytes per element-iteration of the stream-copy variant (1 read + 1 write).
BYTES_PER_ELEMENT_COPY = 2 * 8

#: Issue-boundness of the VAI kernel: the short unrolled FMA body between
#: contiguous loads leaves little memory-level parallelism, so achievable
#: bandwidth tracks the core clock almost 1:1 (the paper's observation
#: that both roofline regions respond to frequency similarly).
VAI_ISSUE_BW_FACTOR = 1.05

#: Default array length: large enough to spill every cache (the paper
#: sizes globalWIs to fill GPU memory).
DEFAULT_GLOBAL_WIS = 2**28  # 256 Mi elements -> 2 GiB per array

#: Minimum runtime for steady-state power measurement (paper: >= 20 s).
DEFAULT_MIN_RUNTIME_S = 20.0


def loopsize_for_intensity(intensity: float) -> int:
    """The unroll factor realizing a given arithmetic intensity.

    Only multiples of 1/16 are exactly realizable (2 flops per 32-byte
    element step); the paper's grid (powers of two from 1/16 up) is.
    """
    if intensity <= 0:
        raise KernelError("intensity must be positive for the FMA variant")
    loopsize = intensity * 16
    if abs(loopsize - round(loopsize)) > 1e-9 or round(loopsize) < 1:
        raise KernelError(
            f"intensity {intensity} is not realizable: LOOPSIZE would be "
            f"{loopsize}; use multiples of 1/16"
        )
    return int(round(loopsize))


def vai_kernel(
    intensity: float,
    *,
    global_wis: int = DEFAULT_GLOBAL_WIS,
    repeat: int = 1,
    spec: Optional[MI250XSpec] = None,
) -> KernelSpec:
    """Build the Algorithm 1 kernel at ``intensity`` flops/byte.

    ``intensity == 0`` yields the stream-copy variant.  The returned
    kernel's flop/byte counts follow the paper's accounting exactly.
    """
    if global_wis <= 0:
        raise KernelError("global_wis must be positive")
    if repeat <= 0:
        raise KernelError("repeat must be positive")
    if intensity == 0:
        nbytes = float(global_wis) * BYTES_PER_ELEMENT_COPY * repeat
        return KernelSpec(
            name="vai-copy",
            flops=0.0,
            hbm_bytes=nbytes,
            issue_bw_factor=VAI_ISSUE_BW_FACTOR,
        )
    loopsize = loopsize_for_intensity(intensity)
    nbytes = float(global_wis) * BYTES_PER_ELEMENT * repeat
    flops = float(global_wis) * 2 * loopsize * repeat
    return KernelSpec(
        name=f"vai-{intensity:g}",
        flops=flops,
        hbm_bytes=nbytes,
        issue_bw_factor=VAI_ISSUE_BW_FACTOR,
    )


class VAIPoint(NamedTuple):
    """One measured point of the VAI sweep.

    A NamedTuple rather than a dataclass: the batched sweeps construct
    hundreds of points per grid and tuple construction is C-speed.
    """

    intensity: float
    time_s: float
    power_w: float
    energy_j: float
    tflops: float
    gbps: float
    f_core_mhz: float


@dataclass(frozen=True)
class VAIResult:
    """A full VAI sweep on one device configuration."""

    points: List[VAIPoint]

    @property
    def intensities(self) -> np.ndarray:
        return np.array([p.intensity for p in self.points])

    def column(self, name: str) -> np.ndarray:
        """Extract a metric column across the sweep as an array."""
        return np.array([getattr(p, name) for p in self.points])

    def point_at(self, intensity: float) -> VAIPoint:
        for p in self.points:
            if p.intensity == intensity:
                return p
        raise KeyError(f"no VAI point at intensity {intensity}")


class VAIBenchmark:
    """Run the VAI sweep on a device, sizing REPEAT for steady state."""

    def __init__(
        self,
        intensities: Sequence[float] = constants.VAI_INTENSITIES,
        *,
        global_wis: int = DEFAULT_GLOBAL_WIS,
        min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
    ) -> None:
        self.intensities = tuple(intensities)
        self.global_wis = global_wis
        self.min_runtime_s = min_runtime_s
        # repeat=1 base kernels are cap- and spec-independent; build once.
        self._bases = [
            vai_kernel(ai, global_wis=self.global_wis, repeat=1)
            for ai in self.intensities
        ]
        self._bases_batch = KernelBatch.from_kernels(self._bases)

    def _sized_kernel(self, intensity: float, device: GPUDevice) -> KernelSpec:
        """Pick REPEAT so the kernel runs at least ``min_runtime_s``.

        Sizing is done against the *uncapped* device so a given intensity
        does identical work under every cap — the paper normalizes time to
        the uncapped run of the same fixed-work kernel.
        """
        base = vai_kernel(intensity, global_wis=self.global_wis, repeat=1)
        probe = GPUDevice(device.spec).run(base)
        repeat = max(1, int(np.ceil(self.min_runtime_s / probe.time_s)))
        return vai_kernel(
            intensity, global_wis=self.global_wis, repeat=repeat
        )

    def run(self, device: GPUDevice) -> VAIResult:
        """Execute the sweep under the device's current cap settings."""
        points = []
        for intensity in self.intensities:
            kernel = self._sized_kernel(intensity, device)
            r = device.run(kernel)
            points.append(
                VAIPoint(
                    intensity=intensity,
                    time_s=r.time_s,
                    power_w=r.power_w,
                    energy_j=r.energy_j,
                    tflops=units.to_tflops(r.achieved_flops),
                    gbps=units.to_gbps(r.achieved_bw),
                    f_core_mhz=units.to_mhz(r.f_core_hz),
                )
            )
        return VAIResult(points)

    # -- batch protocol (used by repro.bench.sweep) ------------------------------

    def grid_kernels(self, spec: MI250XSpec) -> List[KernelSpec]:
        """The cap-independent kernel axis, REPEAT-sized in one batched probe.

        Sizing matches :meth:`_sized_kernel` exactly: one uncapped pass
        over all base kernels replaces the per-intensity probe runs.  The
        probe goes straight to :func:`~repro.gpu.perf.execute_batch` — an
        uncapped device runs every kernel at ``f_max``, and only the
        runtimes matter here.
        """
        probe_t = execute_batch(
            spec,
            self._bases_batch,
            np.full(len(self._bases), spec.f_max_hz),
        ).time_s
        return [
            vai_kernel(
                ai,
                global_wis=self.global_wis,
                repeat=max(1, int(np.ceil(self.min_runtime_s / t))),
            )
            for ai, t in zip(self.intensities, probe_t)
        ]

    def package(self, batch: BatchResult) -> VAIResult:
        """Rows of a batched sweep (aligned with ``grid_kernels``) -> result."""
        cols = zip(
            self.intensities,
            batch.time_s.tolist(),
            batch.power_w.tolist(),
            batch.energy_j.tolist(),
            units.to_tflops(batch.achieved_flops).tolist(),
            units.to_gbps(batch.achieved_bw).tolist(),
            units.to_mhz(batch.f_core_hz).tolist(),
        )
        return VAIResult([VAIPoint(*row) for row in cols])


def default_benchmark() -> VAIBenchmark:
    """The paper's VAI configuration (AI grid 0, 1/16 ... 1024)."""
    return VAIBenchmark()
