"""Per-domain modal GPU power profiles.

Each science domain's applications dwell in a small set of operating
modes (Fig 9): a profile is a semi-Markov mixture of phases, each with a
mean module power, a sample-to-sample spread, a stationary weight, and a
mean dwell time.  Phase means are anchored to the benchmark
characterization of Section IV: latency-bound phases sit below 200 W,
memory-intensive phases in 200-420 W, compute-intensive phases in
420-560 W, and boost excursions just above 560 W (Table IV regions).

The stationary weights, combined with the workload mix shares in
:mod:`repro.scheduler.workload`, are calibrated so the fleet-wide
GPU-hour distribution reproduces Table IV (29.8 / 49.5 / 19.5 / 1.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import TelemetryError
from ..rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ProfilePhase:
    """One operating mode of an application profile."""

    mean_w: float
    std_w: float
    weight: float
    dwell_mean_s: float = 900.0

    def __post_init__(self) -> None:
        if self.mean_w <= 0 or self.std_w < 0:
            raise TelemetryError("phase power must be positive")
        if self.weight <= 0:
            raise TelemetryError("phase weight must be positive")
        if self.dwell_mean_s <= 0:
            raise TelemetryError("phase dwell must be positive")


@dataclass(frozen=True)
class PowerProfile:
    """A named mixture of phases."""

    name: str
    phases: Tuple[ProfilePhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise TelemetryError(f"profile {self.name} has no phases")

    @property
    def weights(self) -> np.ndarray:
        w = np.array([p.weight for p in self.phases])
        return w / w.sum()

    @property
    def mean_power_w(self) -> float:
        """Stationary mean power of the profile."""
        means = np.array([p.mean_w for p in self.phases])
        return float(np.dot(self.weights, means))

    def sample_trace(
        self,
        n_samples: int,
        interval_s: float,
        rng: RngLike = None,
        n_streams: int = 1,
    ) -> np.ndarray:
        """Generate ``(n_streams, n_samples)`` of per-interval power.

        Each stream is an independent semi-Markov phase walk: phase
        indices are drawn by stationary weight, dwell times are
        exponential, and samples take the active phase's mean plus
        Gaussian spread.  Fully vectorized.
        """
        if n_samples <= 0 or n_streams <= 0:
            raise TelemetryError("need positive n_samples and n_streams")
        gen = ensure_rng(rng)
        total_t = n_samples * interval_s
        # `weight` is the stationary *time* share; with unequal dwell
        # times the draw frequency must be weight / dwell (a short-dwell
        # phase needs more visits to hold the same time share).
        dwell_means = np.array([p.dwell_mean_s for p in self.phases])
        draw_p = self.weights / dwell_means
        draw_p = draw_p / draw_p.sum()
        mean_dwell = float(np.dot(draw_p, dwell_means))
        # Enough dwell draws to cover the horizon with margin.
        n_draws = max(4, int(np.ceil(total_t / mean_dwell * 2.5)) + 8)
        phase_idx = gen.choice(
            len(self.phases), size=(n_streams, n_draws), p=draw_p
        )
        dwells = gen.exponential(dwell_means[phase_idx])
        edges = np.cumsum(dwells, axis=1)
        # Guarantee coverage of the full horizon.
        edges[:, -1] = np.maximum(edges[:, -1], total_t + interval_s)

        t = (np.arange(n_samples) + 0.5) * interval_s
        # For each stream, which dwell segment is active at each time.
        seg = np.empty((n_streams, n_samples), dtype=np.int64)
        for s in range(n_streams):  # rows are few; searchsorted is the hot op
            seg[s] = np.searchsorted(edges[s], t, side="right")
        seg = np.minimum(seg, n_draws - 1)
        active = np.take_along_axis(phase_idx, seg, axis=1)

        means = np.array([p.mean_w for p in self.phases])[active]
        stds = np.array([p.std_w for p in self.phases])[active]
        out = means + gen.normal(0.0, 1.0, size=means.shape) * stds
        return np.maximum(out, 0.0)


def _profile(name: str, *rows: Tuple[float, float, float, float]) -> PowerProfile:
    return PowerProfile(
        name=name,
        phases=tuple(ProfilePhase(m, s, w, d) for (m, s, w, d) in rows),
    )


#: The profile library.  Rows are (mean W, std W, weight, dwell s).
PROFILES: Dict[str, PowerProfile] = {
    p.name: p
    for p in [
        # Fig 9 (a)-(b): compute-intensive domains, near-roofline power
        # with short boost excursions.
        _profile(
            "compute_heavy",
            (130.0, 12.0, 0.07, 500.0),
            (340.0, 20.0, 0.25, 700.0),
            (505.0, 18.0, 0.50, 1600.0),
            (540.0, 10.0, 0.135, 900.0),
            (572.0, 6.0, 0.045, 180.0),
        ),
        _profile(
            "compute_heavy_alt",
            (150.0, 15.0, 0.08, 500.0),
            (360.0, 25.0, 0.28, 800.0),
            (470.0, 15.0, 0.38, 1600.0),
            (525.0, 12.0, 0.23, 1000.0),
            (566.0, 5.0, 0.03, 180.0),
        ),
        # Fig 9 (c)-(d): latency / network / IO bound domains.
        _profile(
            "latency_bound",
            (105.0, 6.0, 0.32, 1200.0),
            (135.0, 10.0, 0.30, 900.0),
            (175.0, 12.0, 0.14, 700.0),
            (265.0, 20.0, 0.22, 500.0),
            (430.0, 20.0, 0.02, 300.0),
        ),
        _profile(
            "latency_bound_alt",
            (98.0, 5.0, 0.24, 1200.0),
            (150.0, 10.0, 0.34, 900.0),
            (190.0, 12.0, 0.12, 700.0),
            (300.0, 25.0, 0.28, 500.0),
            (440.0, 20.0, 0.02, 300.0),
        ),
        # Fig 9 (e)-(f): memory-intensive domains.
        _profile(
            "memory_bound",
            (160.0, 12.0, 0.07, 700.0),
            (290.0, 18.0, 0.47, 1400.0),
            (375.0, 16.0, 0.38, 1400.0),
            (455.0, 15.0, 0.08, 600.0),
        ),
        _profile(
            "memory_bound_alt",
            (170.0, 12.0, 0.06, 700.0),
            (255.0, 15.0, 0.30, 1400.0),
            (330.0, 18.0, 0.44, 1400.0),
            (400.0, 15.0, 0.14, 900.0),
            (465.0, 15.0, 0.06, 600.0),
        ),
        # Fig 9 (g)-(h): multi-zone domains spanning all regions.
        _profile(
            "multi_zone",
            (140.0, 12.0, 0.18, 800.0),
            (310.0, 22.0, 0.47, 1000.0),
            (490.0, 18.0, 0.29, 1000.0),
            (565.0, 6.0, 0.02, 180.0),
            (92.0, 4.0, 0.04, 400.0),
        ),
        _profile(
            "multi_zone_alt",
            (155.0, 12.0, 0.22, 800.0),
            (350.0, 25.0, 0.50, 1000.0),
            (510.0, 15.0, 0.22, 1000.0),
            (568.0, 6.0, 0.01, 180.0),
            (92.0, 4.0, 0.05, 400.0),
        ),
        # Mixed low-utilization work (pre/post-processing heavy).
        _profile(
            "mixed_low",
            (110.0, 8.0, 0.26, 900.0),
            (190.0, 15.0, 0.24, 900.0),
            (295.0, 20.0, 0.36, 900.0),
            (430.0, 20.0, 0.14, 600.0),
        ),
    ]
}


def region_shares(profile: PowerProfile, boundaries=(200.0, 420.0, 560.0)) -> np.ndarray:
    """Stationary probability mass of a profile in each Table IV region."""
    means = np.array([p.mean_w for p in profile.phases])
    idx = np.searchsorted(np.asarray(boundaries), means, side="left")
    return np.bincount(idx, weights=profile.weights, minlength=4)
