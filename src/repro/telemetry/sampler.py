"""Sensor-cadence aggregation.

The Frontier pipeline samples out-of-band sensors every 2 seconds and
aggregates to 15-second records in pre-processing (Table II).  15 is not
a multiple of 2, so aggregation windows alternate between 7 and 8 raw
samples — this module reproduces that windowing exactly rather than
assuming a clean divisor.
"""

from __future__ import annotations

import numpy as np

from .. import constants
from ..errors import TelemetryError


def aggregate_sensor_trace(
    raw: np.ndarray,
    *,
    raw_interval_s: float = constants.SENSOR_INTERVAL_S,
    out_interval_s: float = constants.TELEMETRY_INTERVAL_S,
) -> np.ndarray:
    """Mean-aggregate a raw sensor trace onto the telemetry cadence.

    ``raw[i]`` is the sample at time ``i * raw_interval_s``; the output's
    ``k``-th entry is the mean of raw samples whose timestamps fall in
    ``[k * out, (k+1) * out)``.  Trailing partial windows are emitted
    (they are real data, just averaged over fewer samples).
    """
    raw = np.asarray(raw, dtype=float)
    if raw.ndim != 1:
        raise TelemetryError("raw trace must be one-dimensional")
    if raw_interval_s <= 0 or out_interval_s <= 0:
        raise TelemetryError("intervals must be positive")
    if out_interval_s < raw_interval_s:
        raise TelemetryError("output cadence must be coarser than input")
    if len(raw) == 0:
        return raw.copy()
    times = np.arange(len(raw)) * raw_interval_s
    window = np.floor(times / out_interval_s).astype(np.int64)
    n_windows = int(window[-1]) + 1
    sums = np.bincount(window, weights=raw, minlength=n_windows)
    counts = np.bincount(window, minlength=n_windows)
    return sums / counts
