"""Telemetry sample schema.

The out-of-band pipeline produces per-node records at the aggregated
15-second cadence: a timestamp, the node id, the four GPU module powers,
and the CPU package power.  Chunks are columnar (struct-of-arrays) so the
whole pipeline stays vectorized; :class:`TelemetryChunk` is the unit the
generator yields and the store concatenates.

Deliberately absent: job ids, project ids, user ids — telemetry alone
"lacks metadata information on workloads" (paper Section III-A); the join
in :mod:`repro.core.join` reconstructs it from the scheduler log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .. import constants
from ..errors import TelemetryError

#: Field registry: name -> (dtype, description).
FIELDS: Dict[str, tuple] = {
    "time_s": (np.float64, "sample timestamp, seconds since campaign start"),
    "node_id": (np.int32, "compute node index"),
    "gpu_power_w": (np.float32, "per-GPU module power, shape (n, 4)"),
    "cpu_power_w": (np.float32, "CPU package power"),
}


@dataclass(frozen=True)
class TelemetryChunk:
    """A columnar block of aggregated telemetry samples."""

    time_s: np.ndarray       # (n,)
    node_id: np.ndarray      # (n,)
    gpu_power_w: np.ndarray  # (n, gpus_per_node)
    cpu_power_w: np.ndarray  # (n,)

    def __post_init__(self) -> None:
        n = len(self.time_s)
        if len(self.node_id) != n or len(self.cpu_power_w) != n:
            raise TelemetryError("chunk columns must have equal length")
        if self.gpu_power_w.shape != (n, constants.GPUS_PER_NODE):
            raise TelemetryError(
                f"gpu_power_w must be (n, {constants.GPUS_PER_NODE}), "
                f"got {self.gpu_power_w.shape}"
            )
        if n:
            if not np.isfinite(self.gpu_power_w).all():
                raise TelemetryError("non-finite GPU power sample")
            if (self.gpu_power_w < 0).any():
                raise TelemetryError("negative GPU power sample")
            if not np.isfinite(self.time_s).all():
                raise TelemetryError("non-finite timestamp")

    def __len__(self) -> int:
        return len(self.time_s)

    @property
    def node_power_w(self) -> np.ndarray:
        """Approximate node input power (GPUs + CPU)."""
        return self.gpu_power_w.sum(axis=1) + self.cpu_power_w

    @property
    def gpu_hours(self) -> float:
        """GPU-hours covered by this chunk."""
        return (
            len(self)
            * constants.GPUS_PER_NODE
            * constants.TELEMETRY_INTERVAL_S
            / 3600.0
        )

    @staticmethod
    def concatenate(chunks) -> "TelemetryChunk":
        chunks = list(chunks)
        if not chunks:
            raise TelemetryError("cannot concatenate zero chunks")
        return TelemetryChunk(
            time_s=np.concatenate([c.time_s for c in chunks]),
            node_id=np.concatenate([c.node_id for c in chunks]),
            gpu_power_w=np.concatenate([c.gpu_power_w for c in chunks]),
            cpu_power_w=np.concatenate([c.cpu_power_w for c in chunks]),
        )
