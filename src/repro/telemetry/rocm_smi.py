"""Simulated in-band ROCm SMI counter path (Fig 2a).

The paper validates its out-of-band telemetry by comparing it against
ROCm SMI readings for a sample application run.  This module produces the
in-band view of the same underlying power signal: SMI polls at its own
(1 s) cadence, reads the firmware's instantaneous power estimate (slightly
noisier and with a small sensor-calibration offset), and is then averaged
onto the telemetry cadence for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..errors import TelemetryError
from ..rng import RngLike, ensure_rng
from .sampler import aggregate_sensor_trace

#: In-band readings carry a small calibration offset vs the node sensors.
SMI_OFFSET_W = 3.0
SMI_NOISE_W = 4.0


def rocm_smi_trace(
    true_power_w: np.ndarray,
    *,
    true_interval_s: float = constants.SENSOR_INTERVAL_S,
    smi_interval_s: float = constants.ROCM_SMI_INTERVAL_S,
    rng: RngLike = None,
) -> np.ndarray:
    """Sample an underlying power signal the way ROCm SMI sees it.

    ``true_power_w`` is the ground-truth signal at ``true_interval_s``
    cadence; the SMI polls at ``smi_interval_s`` with nearest-sample
    semantics plus offset and read noise.
    """
    true_power_w = np.asarray(true_power_w, dtype=float)
    if true_power_w.ndim != 1 or len(true_power_w) == 0:
        raise TelemetryError("need a non-empty 1-D power signal")
    gen = ensure_rng(rng)
    duration = len(true_power_w) * true_interval_s
    t = np.arange(0.0, duration, smi_interval_s)
    idx = np.minimum(
        (t / true_interval_s).astype(np.int64), len(true_power_w) - 1
    )
    readings = true_power_w[idx] + SMI_OFFSET_W
    readings = readings + gen.normal(0.0, SMI_NOISE_W, size=len(readings))
    return np.maximum(readings, 0.0)


@dataclass(frozen=True)
class ComparisonResult:
    """Fig 2(a): out-of-band telemetry vs in-band SMI, common cadence."""

    telemetry_w: np.ndarray
    smi_w: np.ndarray

    @property
    def correlation(self) -> float:
        if len(self.telemetry_w) < 2:
            raise TelemetryError("need >= 2 samples to correlate")
        return float(np.corrcoef(self.telemetry_w, self.smi_w)[0, 1])

    @property
    def mean_abs_error_w(self) -> float:
        return float(np.mean(np.abs(self.telemetry_w - self.smi_w)))

    @property
    def mean_relative_error(self) -> float:
        return float(
            np.mean(
                np.abs(self.telemetry_w - self.smi_w)
                / np.maximum(self.telemetry_w, 1.0)
            )
        )


def compare_telemetry_vs_smi(
    true_power_w: np.ndarray,
    *,
    rng: RngLike = None,
) -> ComparisonResult:
    """Produce both views of one signal on the 15 s analysis cadence."""
    gen = ensure_rng(rng)
    noisy_oob = np.asarray(true_power_w, dtype=float) + gen.normal(
        0.0, 2.5, size=len(true_power_w)
    )
    telemetry = aggregate_sensor_trace(noisy_oob)
    smi_raw = rocm_smi_trace(true_power_w, rng=gen)
    smi = aggregate_sensor_trace(
        smi_raw, raw_interval_s=constants.ROCM_SMI_INTERVAL_S
    )
    n = min(len(telemetry), len(smi))
    return ComparisonResult(telemetry_w=telemetry[:n], smi_w=smi[:n])
