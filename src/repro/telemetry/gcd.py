"""GCD-level views of module telemetry.

Frontier exposes each MI250X as two GCDs ("to the end-users, each GCD
appears as a GPU"), but the power sensors — and this library's region
boundaries — are module-level.  This module converts between the views:
splitting a module series into two GCD series (workload imbalance makes
the halves unequal) and recombining them exactly.

Use the GCD view when comparing against per-GCD tooling (ROCm SMI
reports per-GCD on real systems); all analysis stays module-level.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TelemetryError
from ..rng import RngLike, ensure_rng

#: Typical GCD-to-GCD imbalance of a module's power draw (fraction of
#: module power, 1 sigma): even replicated work lands slightly unevenly.
DEFAULT_IMBALANCE = 0.03


def split_module_power(
    module_power_w: np.ndarray,
    *,
    imbalance: float = DEFAULT_IMBALANCE,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a module power series into two GCD series.

    The halves sum exactly to the module power; the imbalance is a
    slowly-wandering share (AR(1)) rather than white noise, because the
    asymmetry comes from work placement, not sensors.
    """
    module_power_w = np.asarray(module_power_w, dtype=float)
    if module_power_w.ndim != 1:
        raise TelemetryError("module power must be one-dimensional")
    if (module_power_w < 0).any():
        raise TelemetryError("negative module power")
    if not (0 <= imbalance < 0.5):
        raise TelemetryError("imbalance must be in [0, 0.5)")
    gen = ensure_rng(rng)
    n = len(module_power_w)
    # AR(1) share deviation around 0 with stationary sigma = imbalance.
    rho = 0.95
    innov = gen.normal(0.0, imbalance * np.sqrt(1 - rho**2), size=n)
    dev = np.empty(n)
    prev = gen.normal(0.0, imbalance)
    for i in range(n):
        prev = rho * prev + innov[i]
        dev[i] = prev
    share = np.clip(0.5 + dev, 0.05, 0.95)
    gcd0 = module_power_w * share
    return gcd0, module_power_w - gcd0


def combine_gcd_power(
    gcd0_w: np.ndarray, gcd1_w: np.ndarray
) -> np.ndarray:
    """Recombine two GCD series into the module series (exact inverse)."""
    gcd0_w = np.asarray(gcd0_w, dtype=float)
    gcd1_w = np.asarray(gcd1_w, dtype=float)
    if gcd0_w.shape != gcd1_w.shape:
        raise TelemetryError("GCD series must have equal length")
    if (gcd0_w < 0).any() or (gcd1_w < 0).any():
        raise TelemetryError("negative GCD power")
    return gcd0_w + gcd1_w
