"""Telemetry substrate: out-of-band power data for the simulated fleet.

Reproduces the paper's Table II data products: per-node, per-GPU power
samples collected out-of-band at 2 s and aggregated to 15 s, plus the
in-band ROCm SMI comparison path of Fig 2(a).

* :mod:`repro.telemetry.profiles`  — per-domain modal GPU power profiles
* :mod:`repro.telemetry.schema`    — sample schema and field registry
* :mod:`repro.telemetry.sampler`   — 2 s sensing -> 15 s aggregation
* :mod:`repro.telemetry.generator` — fleet-scale chunked generation
* :mod:`repro.telemetry.store`     — columnar store with npz persistence
* :mod:`repro.telemetry.rocm_smi`  — simulated in-band SMI counters
"""

from .profiles import PROFILES, PowerProfile, ProfilePhase
from .schema import TelemetryChunk
from .sampler import aggregate_sensor_trace
from .generator import FleetTelemetryGenerator
from .store import TelemetryStore
from .rocm_smi import rocm_smi_trace

__all__ = [
    "PROFILES",
    "PowerProfile",
    "ProfilePhase",
    "TelemetryChunk",
    "aggregate_sensor_trace",
    "FleetTelemetryGenerator",
    "TelemetryStore",
    "rocm_smi_trace",
]
