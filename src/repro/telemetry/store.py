"""Columnar telemetry store.

Wraps one (possibly very large) :class:`TelemetryChunk` with the query
operations the analysis layer needs — time/node filtering, flattened
per-GPU views, energy integration — plus persistence in two formats
behind one :meth:`TelemetryStore.load`:

* ``.npz`` (:meth:`save`) — a single compressed archive, loaded fully
  into memory;
* a **columnar directory** (:meth:`save_columnar`) — one ``.npy`` per
  column plus ``meta.json``, reopened with ``np.load(mmap_mode="r")``
  so columns page in lazily and a larger-than-RAM campaign can be
  replayed without materializing it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

import numpy as np

from .. import constants, units
from ..errors import TelemetryError
from .schema import TelemetryChunk


class TelemetryStore:
    """Materialized telemetry with vectorized query helpers."""

    def __init__(
        self,
        chunk: TelemetryChunk,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError("interval must be positive")
        self.chunk = chunk
        self.interval_s = interval_s

    def __len__(self) -> int:
        return len(self.chunk)

    # -- views ---------------------------------------------------------------------

    @property
    def gpu_power_flat(self) -> np.ndarray:
        """All GPU power samples as one 1-D array (the Fig 8 population)."""
        return self.chunk.gpu_power_w.reshape(-1)

    @property
    def nodes(self) -> np.ndarray:
        return np.unique(self.chunk.node_id)

    def filter_time(self, t0_s: float, t1_s: float) -> "TelemetryStore":
        """Samples with t0 <= time < t1 (zero-width ranges are legal)."""
        if t1_s < t0_s:
            raise TelemetryError(
                f"negative time range [{t0_s}, {t1_s})"
            )
        mask = (self.chunk.time_s >= t0_s) & (self.chunk.time_s < t1_s)
        return self._masked(mask)

    def filter_nodes(self, node_ids: Iterable[int]) -> "TelemetryStore":
        mask = np.isin(self.chunk.node_id, np.fromiter(node_ids, dtype=np.int64))
        return self._masked(mask)

    def _masked(self, mask: np.ndarray) -> "TelemetryStore":
        c = self.chunk
        return TelemetryStore(
            TelemetryChunk(
                time_s=c.time_s[mask],
                node_id=c.node_id[mask],
                gpu_power_w=c.gpu_power_w[mask],
                cpu_power_w=c.cpu_power_w[mask],
            ),
            interval_s=self.interval_s,
        )

    # -- aggregates ------------------------------------------------------------------

    @property
    def gpu_hours(self) -> float:
        return len(self) * constants.GPUS_PER_NODE * self.interval_s / 3600.0

    def gpu_energy_j(self) -> float:
        """Total GPU energy represented by the samples."""
        return float(self.chunk.gpu_power_w.sum(dtype=np.float64)) * self.interval_s

    def gpu_energy_mwh(self) -> float:
        return units.to_mwh(self.gpu_energy_j())

    def cpu_energy_j(self) -> float:
        return float(self.chunk.cpu_power_w.sum(dtype=np.float64)) * self.interval_s

    def mean_gpu_power_w(self) -> float:
        return float(self.gpu_power_flat.mean())

    # -- persistence -------------------------------------------------------------------

    def save(self, path) -> None:
        np.savez_compressed(
            path,
            time_s=self.chunk.time_s,
            node_id=self.chunk.node_id,
            gpu_power_w=self.chunk.gpu_power_w,
            cpu_power_w=self.chunk.cpu_power_w,
            interval_s=np.array([self.interval_s]),
        )

    _COLUMNS = ("time_s", "node_id", "gpu_power_w", "cpu_power_w")

    def save_columnar(self, dir_path) -> None:
        """Write one ``.npy`` per column + ``meta.json`` into a directory.

        The out-of-core twin of :meth:`save`: :meth:`load` reopens the
        columns as read-only memmaps, so nothing is resident until a
        query touches it.
        """
        path = Path(dir_path)
        path.mkdir(parents=True, exist_ok=True)
        for name in self._COLUMNS:
            np.save(path / f"{name}.npy", getattr(self.chunk, name))
        meta = {
            "format": "telemetry-columnar",
            "version": 1,
            "interval_s": self.interval_s,
            "rows": len(self),
        }
        (path / "meta.json").write_text(
            json.dumps(meta, sort_keys=True, indent=2) + "\n"
        )

    @staticmethod
    def load(path) -> "TelemetryStore":
        """Open a saved store: ``.npz`` archive or columnar directory.

        Directory stores come back memmapped (``mmap_mode="r"``): the
        same interface, but columns stay on disk until sliced.
        """
        path = Path(path)
        if path.is_dir():
            meta_path = path / "meta.json"
            if not meta_path.is_file():
                raise TelemetryError(
                    f"{path} is not a columnar telemetry store "
                    "(missing meta.json)"
                )
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != "telemetry-columnar":
                raise TelemetryError(
                    f"{meta_path} has unknown format "
                    f"{meta.get('format')!r}"
                )
            cols = {
                name: np.load(path / f"{name}.npy", mmap_mode="r")
                for name in TelemetryStore._COLUMNS
            }
            return TelemetryStore(
                TelemetryChunk(**cols),
                interval_s=float(meta["interval_s"]),
            )
        with np.load(path, allow_pickle=False) as data:
            chunk = TelemetryChunk(
                time_s=data["time_s"],
                node_id=data["node_id"],
                gpu_power_w=data["gpu_power_w"],
                cpu_power_w=data["cpu_power_w"],
            )
            return TelemetryStore(chunk, interval_s=float(data["interval_s"][0]))
