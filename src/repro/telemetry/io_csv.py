"""CSV ingest/export for telemetry.

The analysis pipeline is simulator-fed in this repository, but the method
is meant for real clusters: this module reads out-of-band power telemetry
from CSV — one row per (timestamp, node) with per-GPU power columns — so
production data can flow into the same join/decomposition/projection
path.  The format:

    time_s,node_id,gpu0_w,gpu1_w,gpu2_w,gpu3_w,cpu_w
    0,17,372.1,380.4,91.2,367.9,145.0
    ...

``cpu_w`` is optional (defaults to 0: GPU-only telemetry still supports
every GPU artifact).  Rows may arrive in any order; chunked reading keeps
memory bounded for large files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List

import numpy as np

from .. import constants
from ..errors import TelemetryError
from .schema import TelemetryChunk
from .store import TelemetryStore

GPU_COLUMNS = [f"gpu{i}_w" for i in range(constants.GPUS_PER_NODE)]
REQUIRED_COLUMNS = ["time_s", "node_id"] + GPU_COLUMNS


def _parse_rows(rows: List[dict], has_cpu: bool) -> TelemetryChunk:
    n = len(rows)
    time_s = np.empty(n)
    node_id = np.empty(n, dtype=np.int32)
    gpu = np.empty((n, constants.GPUS_PER_NODE), dtype=np.float32)
    cpu = np.zeros(n, dtype=np.float32)
    for i, row in enumerate(rows):
        try:
            time_s[i] = float(row["time_s"])
            node_id[i] = int(row["node_id"])
            for g, col in enumerate(GPU_COLUMNS):
                gpu[i, g] = float(row[col])
            if has_cpu:
                cpu[i] = float(row["cpu_w"])
        except (KeyError, ValueError) as exc:
            raise TelemetryError(f"bad telemetry row {i}: {exc}") from exc
    return TelemetryChunk(
        time_s=time_s, node_id=node_id, gpu_power_w=gpu, cpu_power_w=cpu
    )


def read_telemetry_csv_chunks(
    path, *, rows_per_chunk: int = 100_000
) -> Iterator[TelemetryChunk]:
    """Stream a telemetry CSV as chunks (bounded memory)."""
    if rows_per_chunk <= 0:
        raise TelemetryError("rows_per_chunk must be positive")
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise TelemetryError(f"{path}: empty file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise TelemetryError(
                f"{path}: missing columns {', '.join(missing)}"
            )
        has_cpu = "cpu_w" in reader.fieldnames
        buffer: List[dict] = []
        for row in reader:
            buffer.append(row)
            if len(buffer) >= rows_per_chunk:
                yield _parse_rows(buffer, has_cpu)
                buffer = []
        if buffer:
            yield _parse_rows(buffer, has_cpu)


def read_telemetry_csv(
    path, *, interval_s: float = constants.TELEMETRY_INTERVAL_S
) -> TelemetryStore:
    """Materialize a telemetry CSV into a store."""
    chunks = list(read_telemetry_csv_chunks(path))
    if not chunks:
        raise TelemetryError(f"{path}: no telemetry rows")
    return TelemetryStore(
        TelemetryChunk.concatenate(chunks), interval_s=interval_s
    )


def write_telemetry_csv(store: TelemetryStore, path) -> None:
    """Export a store to the CSV format this module reads."""
    path = Path(path)
    c = store.chunk
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(REQUIRED_COLUMNS + ["cpu_w"])
        for i in range(len(c)):
            writer.writerow(
                [f"{c.time_s[i]:.6g}", int(c.node_id[i])]
                + [f"{c.gpu_power_w[i, g]:.4f}" for g in range(4)]
                + [f"{c.cpu_power_w[i]:.4f}"]
            )
