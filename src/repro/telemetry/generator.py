"""Fleet telemetry generation.

Renders a scheduler log into out-of-band power telemetry: for every node
and every 15-second sample, the four GPU module powers (driven by the
running job's domain profile, or idle power when unallocated) and the CPU
package power.

Phase dwell times (minutes) are long against the 15 s cadence, so the
generator samples profiles directly at the aggregated cadence and scales
the sensor noise by ``1/sqrt(samples per window)`` — numerically identical
to generating 2 s raw data and mean-aggregating it, at 7.5x less work.
The raw-cadence path still exists (:mod:`repro.telemetry.sampler`) and is
exercised by the Fig 2(a) comparison.

Generation is deterministic per (job, node): every stream gets its own
seed derived from ids, so chunked, parallel, and serial generation all
produce identical data (the mpi4py rank-decomposition idiom).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .. import constants
from ..errors import TelemetryError
from ..gpu.specs import NodeSpec
from ..parallel import partition
from ..rng import substream
from ..scheduler.log import SchedulerLog
from ..scheduler.workload import WorkloadMix
from .profiles import PROFILES, PowerProfile
from .schema import TelemetryChunk
from .store import TelemetryStore

#: Raw sensor samples folded into one aggregated record (15 s / 2 s).
_SAMPLES_PER_WINDOW = (
    constants.TELEMETRY_INTERVAL_S / constants.SENSOR_INTERVAL_S
)


class FleetTelemetryGenerator:
    """Generate telemetry for a scheduled campaign."""

    def __init__(
        self,
        log: SchedulerLog,
        mix: WorkloadMix,
        *,
        node_spec: Optional[NodeSpec] = None,
        seed: int = 0,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError("interval must be positive")
        self.log = log
        self.node_spec = node_spec if node_spec is not None else NodeSpec()
        self.seed = seed
        self.interval_s = interval_s
        self._jobs = log.job_by_id()
        domains = mix.by_name()
        self._profiles: Dict[str, PowerProfile] = {}
        for job in log.jobs:
            if job.domain not in self._profiles:
                domain = domains.get(job.domain)
                if domain is None:
                    raise TelemetryError(
                        f"job {job.job_id} references unknown domain "
                        f"{job.domain!r}"
                    )
                if domain.profile not in PROFILES:
                    raise TelemetryError(
                        f"domain {domain.name} references unknown profile "
                        f"{domain.profile!r}"
                    )
                self._profiles[job.domain] = PROFILES[domain.profile]

    # -- per-node rendering --------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return int(np.floor(self.log.horizon_s / self.interval_s))

    def _sample_times(self) -> np.ndarray:
        return np.arange(self.n_samples) * self.interval_s

    def node_chunk(self, node_id: int) -> TelemetryChunk:
        """Render the full-horizon telemetry of one node."""
        times = self._sample_times()
        n = len(times)
        gpu_spec = self.node_spec.gpu
        noise = gpu_spec.sensor_noise_w / np.sqrt(_SAMPLES_PER_WINDOW)

        # Per-node substream: the same (seed, node) path yields the
        # same samples in any process, which is what keeps sharded
        # generation bitwise identical to single-process generation.
        idle_rng = substream(self.seed, "idle", node_id)
        gpu = np.full(
            (n, constants.GPUS_PER_NODE), gpu_spec.idle_w, dtype=np.float64
        )
        gpu += idle_rng.normal(0.0, noise, size=gpu.shape)
        cpu_load = np.full(n, 0.05)

        for alloc in self.log.allocations_for_node(node_id):
            job = self._jobs[alloc.job_id]
            profile = self._profiles[job.domain]
            lo = int(np.ceil(alloc.start_time_s / self.interval_s))
            hi = int(np.ceil(alloc.end_time_s / self.interval_s))
            hi = min(hi, n)
            if hi <= lo:
                continue
            rng = substream(
                self.seed, "job", alloc.job_id, "node", node_id
            )
            trace = profile.sample_trace(
                hi - lo,
                self.interval_s,
                rng=rng,
                n_streams=constants.GPUS_PER_NODE,
            )
            trace += rng.normal(0.0, noise, size=trace.shape)
            gpu[lo:hi] = np.maximum(trace.T, 0.0)
            cpu_load[lo:hi] = rng.uniform(0.2, 0.55)

        cpu = self.node_spec.cpu_idle_w + (
            self.node_spec.cpu_max_w - self.node_spec.cpu_idle_w
        ) * cpu_load
        return TelemetryChunk(
            time_s=times,
            node_id=np.full(n, node_id, dtype=np.int32),
            gpu_power_w=gpu.astype(np.float32),
            cpu_power_w=cpu.astype(np.float32),
        )

    # -- fleet-scale iteration -------------------------------------------------------

    def chunks(
        self, *, nodes_per_chunk: int = 16
    ) -> Iterator[TelemetryChunk]:
        """Yield telemetry in node blocks (streaming mode).

        Memory is bounded by one block regardless of fleet size, which is
        how full-scale (9408-node) statistics are accumulated without
        materializing the campaign.
        """
        if nodes_per_chunk <= 0:
            raise TelemetryError("nodes_per_chunk must be positive")
        for lo, hi in partition(
            self.log.n_nodes,
            max(1, -(-self.log.n_nodes // nodes_per_chunk)),
        ):
            yield TelemetryChunk.concatenate(
                [self.node_chunk(nid) for nid in range(lo, hi)]
            )

    def generate(
        self, node_ids: Optional[Sequence[int]] = None
    ) -> TelemetryStore:
        """Materialize telemetry for selected nodes (default: all)."""
        ids: List[int] = (
            list(node_ids)
            if node_ids is not None
            else list(range(self.log.n_nodes))
        )
        chunk = TelemetryChunk.concatenate(
            [self.node_chunk(nid) for nid in ids]
        )
        return TelemetryStore(chunk, interval_s=self.interval_s)
