"""Command-line interface.

::

    python -m repro list
    python -m repro run fig4
    python -m repro run all --nodes 128 --days 7 --out results/
    python -m repro run table5 --profile
    python -m repro obs profile --check
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .errors import ReproError
from .experiments import EXPERIMENT_IDS, ExperimentConfig, run


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Exploring the Frontiers of Energy Efficiency "
            "using Power Management at System Scale' (SC 2024)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_p.add_argument(
        "--nodes", type=int, default=96,
        help="simulated fleet size (default 96; Frontier is 9408)",
    )
    run_p.add_argument(
        "--days", type=float, default=4.0,
        help="campaign length in days (default 4; the paper used 91)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--graph-scale", type=float, default=0.02,
        help="Fig 7 network sizes relative to the paper (default 0.02)",
    )
    run_p.add_argument(
        "--out", default=None, help="directory for per-experiment .txt files"
    )
    run_p.add_argument(
        "--csv", action="store_true",
        help="also export numeric series as CSV (requires --out)",
    )
    run_p.add_argument(
        "--obs", action="store_true",
        help=(
            "enable observability: collect metrics + trace spans and "
            "write a run manifest (see docs/observability.md)"
        ),
    )
    run_p.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help=(
            "directory for manifest.json + metrics.prom (default: "
            "--out, else 'obs')"
        ),
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help=(
            "attach the span-linked sampling profiler and write "
            "flamegraph/Chrome-trace artifacts (implies observability; "
            "see docs/performance.md)"
        ),
    )
    run_p.add_argument(
        "--profile-dir", default=None, metavar="DIR",
        help=(
            "directory for profile.collapsed + trace.json + "
            "profile_timings.json (default: --out, else "
            "'profile-artifacts')"
        ),
    )

    advise_p = sub.add_parser(
        "advise",
        help=(
            "recommend per-job frequency caps from real data: a "
            "sacct-style job log plus CSV power telemetry"
        ),
    )
    advise_p.add_argument("sacct", help="sacct dump (JobID|Account|...)")
    advise_p.add_argument(
        "telemetry", help="telemetry CSV (time_s,node_id,gpu0_w..gpu3_w)"
    )
    advise_p.add_argument(
        "--max-slowdown", type=float, default=5.0,
        help="per-job slowdown budget, percent (default 5)",
    )
    advise_p.add_argument(
        "--top", type=int, default=20,
        help="how many jobs to print, largest energy first (default 20)",
    )

    campaign_p = sub.add_parser(
        "campaign",
        help=(
            "run a full campaign sharded by node range across worker "
            "processes; the merged cube is bitwise identical to the "
            "single-process fold"
        ),
    )
    campaign_p.add_argument(
        "--nodes", type=int, default=96,
        help="simulated fleet size (default 96; Frontier is 9408)",
    )
    campaign_p.add_argument(
        "--days", type=float, default=4.0,
        help="campaign length in days (default 4; the paper used 91)",
    )
    campaign_p.add_argument("--seed", type=int, default=0)
    campaign_p.add_argument(
        "--shards", type=int, default=1,
        help="work partition: contiguous node-range shards (default 1)",
    )
    campaign_p.add_argument(
        "--workers", type=int, default=0,
        help=(
            "process-pool width (<= 1 runs shards serially; the cube "
            "is identical either way)"
        ),
    )
    campaign_p.add_argument(
        "--unit-nodes", type=int, default=8,
        help=(
            "nodes per fold unit — fixes the merge tree, so changing "
            "it changes float rounding (default 8)"
        ),
    )
    campaign_p.add_argument(
        "--window-s", type=float, default=600.0,
        help="event-time window (seconds, default 600)",
    )
    campaign_p.add_argument(
        "--lateness-s", type=float, default=0.0,
        help="allowed lateness behind the newest event (default 0 s)",
    )
    campaign_p.add_argument(
        "--shuffle-s", type=float, default=0.0,
        help=(
            "deliver each unit's stream out of order within this "
            "horizon (set --lateness-s at least as large)"
        ),
    )
    campaign_p.add_argument(
        "--dup-fraction", type=float, default=0.0,
        help="inject this fraction of duplicate records per unit",
    )
    campaign_p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write per-shard npz checkpoints (shard_<i>.npz) here",
    )
    campaign_p.add_argument(
        "--resume", action="store_true",
        help="resume completed fold units from --checkpoint-dir",
    )
    campaign_p.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint after every N completed units (default 1)",
    )
    campaign_p.add_argument(
        "--max-units", type=int, default=None, metavar="N",
        help=(
            "stop each shard after N units (bounded partial run; "
            "rerun with --resume to finish)"
        ),
    )
    campaign_p.add_argument(
        "--max-slowdown", type=float, default=5.0,
        help="slowdown budget for the fleet cap advice (default 5 %%)",
    )
    campaign_p.add_argument(
        "--campaign-energy-mwh", type=float, default=None,
        help=(
            "normalize MWh columns to this campaign total (default: "
            "the paper's 16820)"
        ),
    )
    campaign_p.add_argument(
        "--obs", action="store_true",
        help=(
            "enable observability: per-unit spans and counters fold "
            "back worker-count invariant, plus a run manifest"
        ),
    )
    campaign_p.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="directory for manifest.json + metrics.prom (default 'obs')",
    )

    stream_p = sub.add_parser(
        "stream",
        help=(
            "run the incremental ingestion engine over a telemetry "
            "source and print live Table IV/V/VI snapshots"
        ),
    )
    stream_p.add_argument(
        "--from-file", default=None, metavar="PATH",
        help=(
            "ingest telemetry from an .npz store or CSV file "
            "(requires --sacct for the scheduler log); default is an "
            "in-process simulated fleet"
        ),
    )
    stream_p.add_argument(
        "--sacct", default=None,
        help="sacct-style job log to join against (with --from-file)",
    )
    stream_p.add_argument(
        "--nodes", type=int, default=32,
        help="simulated fleet size (default 32)",
    )
    stream_p.add_argument(
        "--days", type=float, default=1.0,
        help="simulated campaign length in days (default 1)",
    )
    stream_p.add_argument("--seed", type=int, default=0)
    stream_p.add_argument(
        "--window-s", type=float, default=600.0,
        help="event-time window (seconds, default 600)",
    )
    stream_p.add_argument(
        "--lateness-s", type=float, default=120.0,
        help="allowed lateness behind the newest event (default 120 s)",
    )
    stream_p.add_argument(
        "--shuffle", action="store_true",
        help="deliver out of order within the lateness horizon",
    )
    stream_p.add_argument(
        "--dup-fraction", type=float, default=0.0,
        help="inject this fraction of duplicate records (with --shuffle)",
    )
    stream_p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "run the campaign sharded by node range instead of one "
            "engine (shorthand for 'repro campaign --shards N'; only "
            "simulated-fleet options apply)"
        ),
    )
    stream_p.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width for --shards (default serial)",
    )
    stream_p.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop after N arrival chunks (live snapshot, no drain)",
    )
    stream_p.add_argument(
        "--snapshot-every", type=int, default=0, metavar="N",
        help="print a live snapshot every N ingested chunks",
    )
    stream_p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write an npz checkpoint of the final engine state",
    )
    stream_p.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint written by --checkpoint",
    )
    stream_p.add_argument(
        "--max-slowdown", type=float, default=5.0,
        help="slowdown budget for the fleet cap advice (default 5 %%)",
    )
    stream_p.add_argument(
        "--campaign-energy-mwh", type=float, default=None,
        help=(
            "normalize MWh columns to this campaign total (default: "
            "the paper's 16820 for simulated fleets, raw for files)"
        ),
    )
    stream_p.add_argument(
        "--obs", action="store_true",
        help=(
            "enable observability: ingest-lag gauges, late-drop/dedup "
            "counters, spans, and a run manifest"
        ),
    )
    stream_p.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="directory for manifest.json + metrics.prom (default 'obs')",
    )
    stream_p.add_argument(
        "--watch", action="store_true",
        help=(
            "render the live health dashboard in place (ingest, mode "
            "shares vs reference, savings, alerts) instead of plain "
            "snapshots"
        ),
    )
    stream_p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help=(
            "serve /metrics, /health and /alerts on this port while "
            "streaming (0 picks an ephemeral port)"
        ),
    )
    stream_p.add_argument(
        "--rules", default=None, metavar="FILE",
        help=(
            "alert rules file (JSON, or TOML on python >= 3.11); "
            "default: the shipped ruleset "
            "(src/repro/obs/health/default_rules.json)"
        ),
    )
    stream_p.add_argument(
        "--drift-ref", default="paper", metavar="REF",
        help=(
            "power-mode drift reference: 'paper' (Table IV), 'off', or "
            "a JSON file with gpu_hours_pct (default paper)"
        ),
    )
    stream_p.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help=(
            "persist every sealed window into an out-of-core columnar "
            "history store at DIR (queryable later with 'repro obs "
            "query --dir DIR'); --watch alone keeps an in-memory one "
            "for the SLO pane"
        ),
    )
    stream_p.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help=(
            "persist the structured event log (window seals, alert "
            "transitions, incident lifecycles) to rotated JSONL "
            "segments at DIR (query later with 'repro obs logs --dir "
            "DIR'); --watch alone keeps an in-memory ring for the "
            "live tail pane"
        ),
    )

    from .serve.objectives import objective_names

    serve_p = sub.add_parser(
        "serve",
        help=(
            "run the closed-loop control plane: ingest telemetry, tag "
            "it with job state, and serve live cap decisions over HTTP "
            "(/v1/fleet/cap, /v1/jobs/{id}/cap, ...; see docs/serving.md)"
        ),
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=9188,
        help="listen port (default 9188; 0 picks an ephemeral port)",
    )
    serve_p.add_argument(
        "--from-file", default=None, metavar="PATH",
        help=(
            "ingest telemetry from an .npz store or CSV file "
            "(requires --sacct); default is an in-process simulated "
            "fleet"
        ),
    )
    serve_p.add_argument(
        "--sacct", default=None,
        help="sacct-style job log to join against (with --from-file)",
    )
    serve_p.add_argument(
        "--nodes", type=int, default=32,
        help="simulated fleet size (default 32)",
    )
    serve_p.add_argument(
        "--days", type=float, default=1.0,
        help="simulated campaign length in days (default 1)",
    )
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--window-s", type=float, default=600.0,
        help="event-time window (seconds, default 600)",
    )
    serve_p.add_argument(
        "--lateness-s", type=float, default=120.0,
        help="allowed lateness behind the newest event (default 120 s)",
    )
    serve_p.add_argument(
        "--objective", default="slowdown", choices=objective_names(),
        help="cap-decision objective (default slowdown)",
    )
    serve_p.add_argument(
        "--max-slowdown", type=float, default=5.0,
        help="slowdown budget, percent (default 5)",
    )
    serve_p.add_argument(
        "--campaign-energy-mwh", type=float, default=None,
        help=(
            "normalize MWh columns to this campaign total (default: "
            "the paper's 16820 for simulated fleets, raw for files)"
        ),
    )
    serve_p.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop ingest after N arrival chunks (no drain)",
    )
    serve_p.add_argument(
        "--chunk-delay-s", type=float, default=0.0,
        help="pace ingest: sleep this long between chunks (default 0)",
    )
    serve_p.add_argument(
        "--exit-after-drain", action="store_true",
        help=(
            "exit once the source is drained instead of serving until "
            "POST /v1/admin/shutdown"
        ),
    )
    serve_p.add_argument(
        "--rules", default=None, metavar="FILE",
        help=(
            "alert rules file (JSON, or TOML on python >= 3.11); "
            "default: the shipped ruleset"
        ),
    )
    serve_p.add_argument(
        "--drift-ref", default="paper", metavar="REF",
        help=(
            "power-mode drift reference: 'paper' (Table IV), 'off', or "
            "a JSON file with gpu_hours_pct (default paper)"
        ),
    )
    serve_p.add_argument(
        "--obs", action="store_true",
        help="enable observability spans/counters and a run manifest",
    )
    serve_p.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="directory for manifest.json + metrics.prom (default 'obs')",
    )
    serve_p.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help=(
            "retain every sealed window in an out-of-core columnar "
            "history store at DIR and serve /v1/query + /v1/series "
            "from it (in-memory if DIR is '-')"
        ),
    )
    serve_p.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help=(
            "keep a structured event log (cap decisions, policy "
            "changes, alerts, incidents) and serve /v1/logs from it; "
            "persisted as JSONL segments at DIR (in-memory if DIR "
            "is '-')"
        ),
    )

    obs_p = sub.add_parser(
        "obs",
        help="inspect run manifests written by --obs",
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    obs_sum = obs_sub.add_parser(
        "summary", help="summarize one manifest: provenance, spans, counters"
    )
    obs_sum.add_argument(
        "manifest", nargs="?", default=None,
        help="path to a .manifest.json (or use --url)",
    )
    obs_sum.add_argument(
        "--top", type=int, default=15,
        help="how many span rows to print (default 15)",
    )
    obs_sum.add_argument(
        "--url", default=None, metavar="URL",
        help=(
            "summarize a live exporter instead of a file: fetches "
            "URL/metrics (e.g. http://127.0.0.1:9109)"
        ),
    )
    obs_alerts = obs_sub.add_parser(
        "alerts",
        help=(
            "show alert state from a live /health endpoint or a "
            "health.json written by 'repro stream --obs'"
        ),
    )
    obs_alerts.add_argument(
        "source", nargs="?", default=None,
        help="path to a health.json (or use --url)",
    )
    obs_alerts.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a live health exporter",
    )
    obs_alerts.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any rule is firing",
    )
    obs_alerts.add_argument(
        "--history", type=int, default=20,
        help="how many recent transitions to print (default 20)",
    )
    obs_inc = obs_sub.add_parser(
        "incidents",
        help=(
            "list, show, or export flight-recorder incidents from a "
            "live /v1/incidents endpoint or an incidents.json"
        ),
    )
    obs_inc.add_argument(
        "action", nargs="?", default="list",
        choices=("list", "show", "export"),
        help=(
            "list the incident timeline, show one incident with its "
            "recorder slice, or export self-contained JSON bundles"
        ),
    )
    obs_inc.add_argument(
        "incident", nargs="?", default=None,
        help="incident id for show/export (e.g. inc-001)",
    )
    obs_inc.add_argument(
        "--from", dest="source", default=None, metavar="FILE",
        help=(
            "an incidents.json written by 'repro serve --obs', "
            "'repro stream --obs', or 'repro run ext_incidents --out'"
        ),
    )
    obs_inc.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a live control plane (fetches /v1/incidents)",
    )
    obs_inc.add_argument(
        "--out", default="incident-artifacts", metavar="DIR",
        help=(
            "bundle output directory for 'export' "
            "(default incident-artifacts)"
        ),
    )
    obs_inc.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any incident is still open (the CI gate)",
    )
    obs_prof = obs_sub.add_parser(
        "profile",
        help=(
            "profile one experiment end to end: collapsed stacks for "
            "flamegraphs, a Chrome trace, per-span attribution, and "
            "perf-budget checks"
        ),
    )
    obs_prof.add_argument(
        "experiment", nargs="?", default="table5",
        help="experiment id to profile (default table5)",
    )
    obs_prof.add_argument(
        "--nodes", type=int, default=24,
        help="simulated fleet size (default 24, the CI reference)",
    )
    obs_prof.add_argument(
        "--days", type=float, default=1.0,
        help="campaign length in days (default 1)",
    )
    obs_prof.add_argument("--seed", type=int, default=3)
    obs_prof.add_argument(
        "--out", default="profile-artifacts", metavar="DIR",
        help="artifact directory (default profile-artifacts)",
    )
    obs_prof.add_argument(
        "--interval-ms", type=float, default=5.0,
        help="stack sampling interval in milliseconds (default 5)",
    )
    obs_prof.add_argument(
        "--memory", action="store_true",
        help=(
            "also record per-span tracemalloc deltas and the top "
            "allocation sites"
        ),
    )
    obs_prof.add_argument(
        "--exact", action="store_true",
        help="also run cProfile for exact per-function call counts",
    )
    obs_prof.add_argument(
        "--top", type=int, default=20,
        help="rows per attribution table (default 20)",
    )
    obs_prof.add_argument(
        "--budget", default=None, metavar="FILE",
        help=(
            "perf-budget JSON of named span limits (default "
            "benchmarks/perf_budget.json when --check is given)"
        ),
    )
    obs_prof.add_argument(
        "--check", action="store_true",
        help=(
            "check span totals against the perf budget and exit "
            "non-zero on any breach (the CI gate)"
        ),
    )
    obs_query = obs_sub.add_parser(
        "query",
        help=(
            "range-query a history store (written by --history-dir) or "
            "a live /v1/query endpoint; --check refolds every rollup "
            "bucket bitwise (the CI gate)"
        ),
    )
    obs_query.add_argument(
        "series", nargs="?", default=None,
        help="series name (see 'repro obs query --dir DIR' for a list)",
    )
    obs_query.add_argument(
        "--dir", dest="store_dir", default=None, metavar="DIR",
        help="history store directory written by --history-dir",
    )
    obs_query.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a live control plane (uses /v1/query)",
    )
    obs_query.add_argument(
        "--t0", type=float, default=None,
        help="range start, event seconds (default: first window)",
    )
    obs_query.add_argument(
        "--t1", type=float, default=None,
        help="range end, exclusive (default: past the last window)",
    )
    obs_query.add_argument(
        "--step", type=float, default=None,
        help="bucket width in seconds (default: ~60 buckets)",
    )
    obs_query.add_argument(
        "--agg", default=None,
        help="aggregation override (sum/min/max/last/mean/count)",
    )
    obs_query.add_argument(
        "--level", type=int, default=None,
        help="force a rollup level (default: automatic selection)",
    )
    obs_query.add_argument(
        "--json", action="store_true",
        help="print the raw query result as JSON",
    )
    obs_query.add_argument(
        "--check", action="store_true",
        help=(
            "verify every rollup bucket refolds bitwise from level 0 "
            "and exit non-zero on any mismatch (requires --dir)"
        ),
    )
    obs_hist = obs_sub.add_parser(
        "history",
        help=(
            "maintain a history store: info (levels, segments, bytes), "
            "compact (merge ragged segments), gc (drop old segments)"
        ),
    )
    obs_hist.add_argument(
        "action", choices=("info", "compact", "gc"),
        help="what to do with the store",
    )
    obs_hist.add_argument(
        "--dir", dest="store_dir", required=True, metavar="DIR",
        help="history store directory written by --history-dir",
    )
    obs_hist.add_argument(
        "--keep-s", type=float, default=None,
        help="gc: keep at least this much trailing event time (seconds)",
    )
    obs_logs = obs_sub.add_parser(
        "logs",
        help=(
            "query or tail a structured event log from a store written "
            "by --log-dir or a live /v1/logs endpoint; --check "
            "validates segment/manifest integrity (the CI gate)"
        ),
    )
    obs_logs.add_argument(
        "action", nargs="?", default="query", choices=("query", "tail"),
        help=(
            "query applies the filters below; tail shows only the "
            "newest records (default query)"
        ),
    )
    obs_logs.add_argument(
        "--dir", dest="store_dir", default=None, metavar="DIR",
        help="event-log store directory written by --log-dir",
    )
    obs_logs.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a live control plane (uses /v1/logs)",
    )
    obs_logs.add_argument(
        "--t0", type=float, default=None,
        help="range start, event seconds",
    )
    obs_logs.add_argument(
        "--t1", type=float, default=None,
        help="range end, event seconds",
    )
    obs_logs.add_argument(
        "--severity", default=None,
        help="minimum severity (debug/info/warning/error/critical)",
    )
    obs_logs.add_argument(
        "--event", default=None,
        help=(
            "event name, exact ('serve.decide_cap') or dotted prefix "
            "('serve.')"
        ),
    )
    obs_logs.add_argument(
        "--window", type=int, default=None,
        help="only records correlated to this window index",
    )
    obs_logs.add_argument(
        "--limit", "-n", type=int, default=None,
        help="newest N matches (default 200 for query, 20 for tail)",
    )
    obs_logs.add_argument(
        "--json", action="store_true",
        help="print raw records as JSON lines",
    )
    obs_logs.add_argument(
        "--check", action="store_true",
        help=(
            "validate segment files against the manifest (counts, seq "
            "monotonicity, time bounds) and exit non-zero on any "
            "problem (requires --dir)"
        ),
    )
    obs_diff = obs_sub.add_parser(
        "diff",
        help=(
            "compare two manifests and flag provenance drift (config, "
            "versions, git, output digests) and timing drift"
        ),
    )
    obs_diff.add_argument("a", help="baseline manifest")
    obs_diff.add_argument("b", help="candidate manifest")
    obs_diff.add_argument(
        "--timing-tolerance", type=float, default=25.0, metavar="PCT",
        help="per-span total-duration drift tolerance (default 25 %%)",
    )

    report_p = sub.add_parser(
        "report",
        help="run the full pipeline and write a single markdown report",
    )
    report_p.add_argument(
        "--out", default="REPORT.md", help="output path (default REPORT.md)"
    )
    report_p.add_argument("--nodes", type=int, default=96)
    report_p.add_argument("--days", type=float, default=4.0)
    report_p.add_argument("--seed", type=int, default=0)
    report_p.add_argument(
        "--graph-scale", type=float, default=0.02,
    )
    report_p.add_argument(
        "--no-extensions", action="store_true",
        help="limit the report to the paper's artifacts",
    )
    return parser


def _advise(args) -> int:
    from . import units
    from .core import measured_factors
    from .policy import CapAdvisor, fingerprint_jobs
    from .scheduler.sacct import read_sacct
    from .telemetry.io_csv import read_telemetry_csv_chunks

    log = read_sacct(args.sacct)
    fingerprints = fingerprint_jobs(
        read_telemetry_csv_chunks(args.telemetry), log
    )
    if not fingerprints:
        print("no jobs overlap the telemetry window", file=sys.stderr)
        return 1
    factors = measured_factors("frequency")
    advisor = CapAdvisor(factors, max_slowdown_pct=args.max_slowdown)

    total_energy = sum(fp.energy_j for fp in fingerprints.values())
    total_saving = 0.0
    rows = []
    for fp in sorted(
        fingerprints.values(), key=lambda f: f.energy_j, reverse=True
    ):
        rec = advisor.recommend(fp)
        total_saving += rec.expected_saving_j
        rows.append((fp, rec))

    print(
        f"{len(fingerprints)} jobs fingerprinted; "
        f"{units.to_mwh(total_energy):.2f} MWh of GPU energy; "
        f"expected saving {units.to_mwh(total_saving):.2f} MWh "
        f"({100 * total_saving / total_energy:.1f} %) at <= "
        f"{args.max_slowdown:g} % slowdown per job\n"
    )
    header = (
        f"{'job':>8} {'domain':<8} {'family':<18} {'MWh':>8} "
        f"{'cap':>9} {'save %':>7} {'dT %':>6}"
    )
    print(header)
    for fp, rec in rows[: args.top]:
        cap = f"{rec.cap:.0f} MHz" if rec.capped else "-"
        save_pct = (
            100 * rec.expected_saving_j / fp.energy_j if fp.energy_j else 0
        )
        print(
            f"{fp.job_id:>8} {fp.domain:<8} {fp.family:<18} "
            f"{units.to_mwh(fp.energy_j):8.3f} {cap:>9} "
            f"{save_pct:7.2f} {rec.expected_slowdown_pct:6.2f}"
        )
    if len(rows) > args.top:
        print(f"... and {len(rows) - args.top} more jobs")
    return 0


def _build_health(args):
    """A HealthMonitor (+ optional HealthServer) from the stream flags."""
    from .obs.health import (
        DriftReference,
        HealthMonitor,
        HealthServer,
        load_rules,
    )

    rules = load_rules(args.rules) if args.rules else None
    drift = args.drift_ref != "off"
    if not drift:
        reference = None
    elif args.drift_ref == "paper":
        reference = DriftReference.paper()
    else:
        reference = DriftReference.from_file(args.drift_ref)
    monitor = HealthMonitor(rules, reference=reference, drift=drift)
    server = None
    if args.serve is not None:
        server = HealthServer(monitor=monitor, port=args.serve).start()
    return monitor, server


def _open_event_log(log_dir):
    """An :class:`EventLog`, persisted at ``log_dir`` when given.

    An existing store (manifest present) is reopened and appended to —
    reopen-resume leaves segments bitwise-identical to one continuous
    run.  ``None`` or ``'-'`` keeps the ring in memory only.
    """
    from pathlib import Path

    from .obs.log import EventLog, LogStore
    from .obs.log.store import MANIFEST_NAME

    store = None
    if log_dir and log_dir != "-":
        path = Path(log_dir)
        store = (
            LogStore.open(path)
            if (path / MANIFEST_NAME).exists()
            else LogStore(path)
        )
    return EventLog(store=store)


def _print_event_log_summary(eventlog, log_dir) -> None:
    """The end-of-run structured-log summary block."""
    summary = eventlog.summary()
    print(
        f"\nevents: {summary['events_total']} emitted "
        f"({summary['suppressed_total']} suppressed, "
        f"{summary['evicted_total']} evicted from the ring)"
    )
    if log_dir and log_dir != "-":
        store = summary["store"]
        print(
            f"event log written to {log_dir} "
            f"({store['records']} records in {store['segments']} "
            f"segment(s); query with 'repro obs logs --dir {log_dir}')"
        )


def _write_health_state(monitor, obs_dir) -> None:
    """Persist the final health/alert state for ``repro obs alerts``."""
    import json
    from pathlib import Path

    obs_dir = Path(obs_dir)
    obs_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": 1,
        "health": monitor.to_health_dict(),
        "alerts": monitor.to_alerts_dict(),
    }
    path = obs_dir / "health.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"health state written to {path}")


def _run_campaign(
    *, nodes, days, seed, shards, workers, unit_nodes, window_s,
    lateness_s, shuffle_s, dup_fraction, checkpoint_dir, resume,
    checkpoint_every, max_units, max_slowdown, campaign_energy_mwh,
) -> int:
    """Shared body of ``repro campaign`` and ``repro stream --shards``."""
    from . import constants
    from .stream.shard import ShardConfig, run_sharded_campaign

    cfg = ShardConfig(
        window_s=window_s,
        lateness_s=lateness_s,
        unit_nodes=unit_nodes,
        checkpoint_every=checkpoint_every,
        shuffle_s=shuffle_s,
        dup_fraction=dup_fraction,
    )
    result = run_sharded_campaign(
        fleet_nodes=nodes,
        days=days,
        seed=seed,
        shards=shards,
        workers=workers,
        cfg=cfg,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        max_units_per_shard=max_units,
    )
    campaign_mwh = (
        campaign_energy_mwh
        if campaign_energy_mwh is not None
        else constants.CAMPAIGN_GPU_ENERGY_MWH
    )
    snap = result.snapshot(
        max_slowdown_pct=max_slowdown, campaign_energy_mwh=campaign_mwh,
    )
    state = (
        "complete"
        if result.complete
        else f"partial, {result.units_done}/{result.n_units} units"
    )
    print(f"===== sharded campaign ({state}) =====")
    print(
        f"{result.shards} shards of {result.unit_nodes}-node fold "
        f"units ({result.n_units} units, {result.workers} workers): "
        f"{result.stats.samples_folded:,} samples folded in "
        f"{result.wall_s:.1f} s "
        f"({result.samples_per_s / 1e6:.2f}M GPU-samples/s)"
    )
    if not result.complete and checkpoint_dir is not None:
        print(f"rerun with --resume to continue from {checkpoint_dir}")
    print(snap.render())
    return 0


def _campaign(args) -> int:
    return _run_campaign(
        nodes=args.nodes, days=args.days, seed=args.seed,
        shards=args.shards, workers=args.workers,
        unit_nodes=args.unit_nodes, window_s=args.window_s,
        lateness_s=args.lateness_s, shuffle_s=args.shuffle_s,
        dup_fraction=args.dup_fraction,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        max_units=args.max_units, max_slowdown=args.max_slowdown,
        campaign_energy_mwh=args.campaign_energy_mwh,
    )


def _stream_sharded(args) -> int:
    """``repro stream --shards N``: delegate to the campaign engine."""
    blocked = [
        ("--from-file", args.from_file is not None),
        ("--sacct", args.sacct is not None),
        ("--max-chunks", args.max_chunks is not None),
        ("--snapshot-every", bool(args.snapshot_every)),
        ("--checkpoint", args.checkpoint is not None),
        ("--resume", args.resume is not None),
        ("--watch", args.watch),
        ("--serve", args.serve is not None),
        ("--rules", args.rules is not None),
        ("--history-dir", args.history_dir is not None),
    ]
    bad = [flag for flag, used in blocked if used]
    if bad:
        print(
            f"--shards runs the sharded campaign engine over a "
            f"simulated fleet; {', '.join(bad)} only applies to the "
            f"single-engine stream (use 'repro campaign' for "
            f"checkpointed sharded runs)",
            file=sys.stderr,
        )
        return 2
    return _run_campaign(
        nodes=args.nodes, days=args.days, seed=args.seed,
        shards=args.shards, workers=args.workers,
        unit_nodes=8, window_s=args.window_s,
        lateness_s=args.lateness_s,
        shuffle_s=args.lateness_s if args.shuffle else 0.0,
        dup_fraction=args.dup_fraction,
        checkpoint_dir=None, resume=False, checkpoint_every=1,
        max_units=None, max_slowdown=args.max_slowdown,
        campaign_energy_mwh=args.campaign_energy_mwh,
    )


def _stream(args) -> int:
    if args.shards is not None:
        return _stream_sharded(args)

    from . import constants
    from .stream import (
        StreamEngine,
        file_source,
        load_checkpoint,
        perturb,
        save_checkpoint,
        simulated_fleet,
    )

    if args.from_file is not None:
        if args.sacct is None:
            print(
                "--from-file needs --sacct for the scheduler log",
                file=sys.stderr,
            )
            return 1
        from .scheduler.sacct import read_sacct

        log = read_sacct(args.sacct)
        source = file_source(args.from_file)
        campaign_mwh = args.campaign_energy_mwh
    else:
        log, source = simulated_fleet(
            fleet_nodes=args.nodes, days=args.days, seed=args.seed
        )
        campaign_mwh = (
            args.campaign_energy_mwh
            if args.campaign_energy_mwh is not None
            else constants.CAMPAIGN_GPU_ENERGY_MWH
        )

    if args.shuffle:
        source = perturb(
            source,
            seed=args.seed,
            lateness_s=args.lateness_s,
            dup_fraction=args.dup_fraction,
        )
    elif args.dup_fraction:
        print("--dup-fraction needs --shuffle", file=sys.stderr)
        return 1

    if args.resume is not None:
        engine = load_checkpoint(args.resume, log)
    else:
        engine = StreamEngine(
            log,
            interval_s=constants.TELEMETRY_INTERVAL_S,
            window_s=args.window_s,
            lateness_s=args.lateness_s,
        )

    monitor = server = dashboard = None
    if args.watch or args.serve is not None or args.rules is not None:
        monitor, server = _build_health(args)
        engine.attach_health(monitor)
        if server is not None:
            print(
                f"health exporter on {server.url} "
                "(/metrics /health /alerts)"
            )
        if args.watch:
            from .obs.health import Dashboard

            dashboard = Dashboard()
    # The flight recorder rides along whenever someone is watching or
    # artifacts were requested; it never changes the fold itself.
    forensics = None
    if args.watch or args.obs or args.obs_dir:
        from .obs.forensics import Forensics
        from .serve.jobs import JobStateIndex

        reference = (
            monitor.drift.reference
            if monitor is not None and monitor.drift is not None
            else None
        )
        forensics = Forensics(
            reference=reference,
            tagger=JobStateIndex(log),
            monitor=monitor,
        )
        engine.attach_recorder(forensics)
    # The history store likewise rides the window-observer hook:
    # persistent when --history-dir names a directory, in-memory for
    # the --watch SLO pane.
    history = None
    if args.watch or args.history_dir:
        from .obs.history import History

        history = History(dir=args.history_dir, monitor=monitor)
        engine.attach_history(history)
    # The structured event log attaches last on the same hook:
    # persistent when --log-dir names a directory, in-memory for the
    # --watch tail pane.
    eventlog = None
    if args.watch or args.log_dir:
        eventlog = _open_event_log(args.log_dir)
        engine.attach_log(eventlog)
        if monitor is not None:
            monitor.alerts.add_listener(eventlog.alert_transition)
        if forensics is not None:
            forensics.set_event_log(eventlog)
    # --watch refreshes at the snapshot cadence; plain snapshots stay
    # opt-in via --snapshot-every as before.
    watch_every = args.snapshot_every or 20

    try:
        for i, chunk in enumerate(source):
            if args.max_chunks is not None and i >= args.max_chunks:
                break
            engine.ingest(chunk)
            if dashboard is not None and (i + 1) % watch_every == 0:
                dashboard.update(
                    engine.snapshot(
                        max_slowdown_pct=args.max_slowdown,
                        campaign_energy_mwh=campaign_mwh,
                    ),
                    monitor,
                    forensics=forensics,
                    history=history,
                    eventlog=eventlog,
                )
            elif args.snapshot_every and (i + 1) % args.snapshot_every == 0:
                snap = engine.snapshot(
                    max_slowdown_pct=args.max_slowdown,
                    campaign_energy_mwh=campaign_mwh,
                )
                print(f"--- snapshot after chunk {i + 1} ---")
                print(snap.render())
                print()
        if args.max_chunks is None:
            # Completed sources drain: every buffered window seals.
            engine.drain()
        else:
            # Paused streams don't drain; flush the stores explicitly
            # so --history-dir/--log-dir leave consistent manifests.
            if history is not None:
                history.finalize()
            if eventlog is not None:
                eventlog.finalize()

        if args.checkpoint is not None:
            save_checkpoint(engine, args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}\n")

        snap = engine.snapshot(
            max_slowdown_pct=args.max_slowdown,
            campaign_energy_mwh=campaign_mwh,
        )
        if dashboard is not None:
            dashboard.update(
                snap, monitor, forensics=forensics, history=history,
                eventlog=eventlog,
            )
        label = (
            "live (stream paused)" if args.max_chunks else "final (drained)"
        )
        print(f"===== {label} snapshot =====")
        print(snap.render())
        if monitor is not None:
            doc = monitor.to_health_dict()
            print(
                f"\nhealth: {doc['status']} ({doc['firing']} firing / "
                f"{len(doc['rules'])} rules, "
                f"{doc['evaluations']} evaluations)"
            )
            if args.obs or args.obs_dir:
                _write_health_state(monitor, args.obs_dir or "obs")
        if forensics is not None:
            summary = forensics.summary()
            print(
                f"\nincidents: {summary['incidents_open']} open / "
                f"{summary['incidents_total']} total "
                f"({summary['findings_total']} findings over "
                f"{summary['windows_recorded']} windows)"
            )
            if summary["incidents_total"]:
                print(forensics.timeline())
            if args.obs or args.obs_dir:
                from .obs.forensics import write_forensics_artifacts

                paths = write_forensics_artifacts(
                    args.obs_dir or "obs",
                    forensics,
                    command="repro stream",
                    registry=(
                        monitor.registry if monitor is not None else None
                    ),
                    monitor=monitor,
                )
                print(f"incidents written to {paths['incidents'][0]}")
        if history is not None:
            summary = history.summary()
            print(
                f"\nhistory: {summary['windows_recorded']} windows "
                f"recorded, {summary['slo_transitions']} SLO "
                f"transitions"
            )
            for row in summary["slos"]:
                print(
                    f"  {row['name']:<16} budget "
                    f"{100 * row['budget_remaining']:6.2f}% left  "
                    f"burn {row['burn_fast']:.2f} (5m/1h) / "
                    f"{row['burn_slow']:.2f} (6h/3d)"
                )
            if history.events():
                print(history.timeline())
            if args.history_dir:
                print(
                    f"history store written to {args.history_dir} "
                    f"({history.store.total_bytes():,} column bytes; "
                    f"query with 'repro obs query --dir "
                    f"{args.history_dir}')"
                )
        if eventlog is not None:
            _print_event_log_summary(eventlog, args.log_dir)
    finally:
        if server is not None:
            server.close()
    return 0


def _serve(args) -> int:
    """``repro serve``: the closed-loop control-plane service."""
    from . import constants
    from .obs.health import DriftReference, HealthMonitor, load_rules
    from .serve import ControlPlane
    from .stream import file_source, simulated_fleet

    if args.from_file is not None:
        if args.sacct is None:
            print(
                "--from-file needs --sacct for the scheduler log",
                file=sys.stderr,
            )
            return 1
        from .scheduler.sacct import read_sacct

        log = read_sacct(args.sacct)
        source = file_source(args.from_file)
        campaign_mwh = args.campaign_energy_mwh
    else:
        log, source = simulated_fleet(
            fleet_nodes=args.nodes, days=args.days, seed=args.seed
        )
        campaign_mwh = (
            args.campaign_energy_mwh
            if args.campaign_energy_mwh is not None
            else constants.CAMPAIGN_GPU_ENERGY_MWH
        )

    rules = load_rules(args.rules) if args.rules else None
    drift = args.drift_ref != "off"
    if not drift:
        reference = None
    elif args.drift_ref == "paper":
        reference = DriftReference.paper()
    else:
        reference = DriftReference.from_file(args.drift_ref)
    monitor = HealthMonitor(rules, reference=reference, drift=drift)

    history = None
    if args.history_dir is not None:
        from .obs.history import History

        history = History(
            dir=None if args.history_dir == "-" else args.history_dir,
        )
    eventlog = (
        _open_event_log(args.log_dir)
        if args.log_dir is not None
        else None
    )
    plane = ControlPlane(
        log,
        objective=args.objective,
        max_slowdown_pct=args.max_slowdown,
        campaign_energy_mwh=campaign_mwh,
        window_s=args.window_s,
        lateness_s=args.lateness_s,
        monitor=monitor,
        history=history,
        event_log=eventlog,
    )
    server = plane.serve(host=args.host, port=args.port)
    print(f"control plane serving on {server.url}")
    print(
        "endpoints: /v1/fleet/cap /v1/fleet/savings /v1/jobs "
        "/v1/incidents /v1/policy"
        + (" /v1/series /v1/query" if history is not None else "")
        + (" /v1/logs" if eventlog is not None else "")
        + " /metrics /health /alerts"
    )
    sys.stdout.flush()
    try:
        plane.run(
            source,
            max_chunks=args.max_chunks,
            drain=args.max_chunks is None,
            chunk_delay_s=args.chunk_delay_s,
        )
        if args.exit_after_drain:
            plane.request_stop()
        if not plane.stop_event.is_set():
            print(
                "ingest complete; serving until POST /v1/admin/shutdown "
                "(or Ctrl-C)"
            )
            sys.stdout.flush()
            plane.wait_until_stopped()
    except KeyboardInterrupt:
        plane.request_stop()
    finally:
        plane.close()

    view = plane.cache.view
    stats = plane.engine.stats
    print("===== control plane shut down =====")
    print(
        f"published {view.version if view else 0} snapshots; "
        f"{stats.samples_folded:,} samples folded into "
        f"{stats.windows_folded} windows; "
        f"{len(view.jobs.active_job_ids()) if view else 0} jobs seen"
    )
    if view is not None:
        decision = view.decision
        if decision.capped:
            print(
                f"final advice [{decision.objective}]: cap at "
                f"{decision.cap:.0f} ({decision.knob}) -> "
                f"{decision.savings_pct:.2f} % saving at "
                f"{decision.runtime_increase_pct:.2f} % runtime increase"
            )
        else:
            print(
                f"final advice [{decision.objective}]: leave uncapped"
            )
    doc = monitor.to_health_dict()
    print(
        f"health: {doc['status']} ({doc['firing']} firing / "
        f"{len(doc['rules'])} rules, {doc['evaluations']} evaluations)"
    )
    if plane.forensics is not None:
        summary = plane.forensics.summary()
        print(
            f"incidents: {summary['incidents_open']} open / "
            f"{summary['incidents_total']} total "
            f"({summary['findings_total']} findings over "
            f"{summary['windows_recorded']} windows)"
        )
        if summary["incidents_total"]:
            print(plane.forensics.timeline())
    if plane.history is not None:
        # Idempotent when the drain already synced; covers --max-chunks
        # runs that stop before the source is drained.
        plane.history.finalize()
        summary = plane.history.summary()
        print(
            f"history: {summary['windows_recorded']} windows recorded, "
            f"{summary['slo_transitions']} SLO transitions"
        )
        if plane.history.events():
            print(plane.history.timeline())
        if args.history_dir and args.history_dir != "-":
            print(f"history store written to {args.history_dir}")
    if plane.event_log is not None:
        # Idempotent when the drain already synced; covers --max-chunks
        # runs that stop before the source is drained.
        plane.event_log.finalize()
        _print_event_log_summary(plane.event_log, args.log_dir)
    if args.obs or args.obs_dir:
        _write_health_state(monitor, args.obs_dir or "obs")
        if plane.forensics is not None:
            from .obs.forensics import write_forensics_artifacts

            paths = write_forensics_artifacts(
                args.obs_dir or "obs",
                plane.forensics,
                command="repro serve",
                registry=plane.registry,
                monitor=monitor,
            )
            print(f"incidents written to {paths['incidents'][0]}")
    return 0


def _obs_alerts(args) -> int:
    import json
    from pathlib import Path

    from .errors import HealthError
    from .obs.health import fetch_url, render_events

    if (args.source is None) == (args.url is None):
        print(
            "obs alerts needs exactly one of a health.json path or --url",
            file=sys.stderr,
        )
        return 2
    if args.url is not None:
        base = args.url.rstrip("/")
        health = json.loads(fetch_url(base + "/health")[1])
        alerts = json.loads(fetch_url(base + "/alerts")[1])
        origin = base
    else:
        try:
            doc = json.loads(Path(args.source).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise HealthError(
                f"cannot read health state {args.source}: {exc}"
            ) from exc
        health = doc.get("health") or {}
        alerts = doc.get("alerts") or {}
        origin = args.source
    firing = alerts.get("firing") or []
    print(
        f"alerts from {origin}: status {health.get('status', '?')}, "
        f"{len(firing)} firing"
    )
    for row in firing:
        value = row.get("value")
        shown = "-" if value is None else f"{value:g}"
        print(
            f"  ! {row['name']} [{row.get('severity', '?')}] "
            f"value={shown} — {row.get('summary', '')}"
        )
    history = (alerts.get("history") or [])[-args.history:]
    if history:
        print(render_events(history, title="recent transitions:"))
    return 1 if (args.check and firing) else 0


def _fetch_incidents(base: str) -> dict:
    """One live /v1/incidents poll, reshaped like an incidents.json."""
    import json

    from .errors import ForensicsError
    from .obs.health import fetch_url

    status, body = fetch_url(base + "/v1/incidents")
    if status != 200:
        raise ForensicsError(
            f"GET {base}/v1/incidents -> {status}: {body.strip()}"
        )
    doc = json.loads(body)
    # Per-incident recorder slices live behind /v1/incidents/{id}; fold
    # them into a "records" list so bundle slicing works identically on
    # live and file sources.
    records = {}
    for incident in doc.get("incidents") or []:
        status, body = fetch_url(
            base + "/v1/incidents/" + incident["id"]
        )
        if status != 200:
            continue
        for record in json.loads(body).get("records") or []:
            records[record["index"]] = record
    doc["records"] = [records[i] for i in sorted(records)]
    doc["command"] = f"GET {base}/v1/incidents"
    return doc


def _obs_incidents(args) -> int:
    from pathlib import Path

    from .obs.forensics import build_bundle, load_forensics, render_doc
    from .obs.forensics import render_timeline

    if (args.source is None) == (args.url is None):
        print(
            "obs incidents needs exactly one of --from FILE or --url",
            file=sys.stderr,
        )
        return 2
    if args.action == "show" and args.incident is None:
        print("obs incidents show needs an incident id", file=sys.stderr)
        return 2

    if args.url is not None:
        origin = args.url.rstrip("/")
        doc = _fetch_incidents(origin)
    else:
        origin = args.source
        doc = load_forensics(args.source)
    incidents = doc.get("incidents") or []
    open_ids = [i["id"] for i in incidents if i.get("status") == "open"]

    if args.action == "list":
        summary = doc.get("summary") or {}
        head = (
            f"incidents from {origin}: {len(open_ids)} open / "
            f"{len(incidents)} total"
        )
        if summary.get("windows_recorded") is not None:
            head += (
                f" ({summary['windows_recorded']} windows recorded, "
                f"{summary.get('findings_total', 0)} findings)"
            )
        print(head)
        print(render_timeline(incidents))
    elif args.action == "show":
        bundle = build_bundle(doc, args.incident)
        incident = bundle["incident"]
        print(render_timeline(
            [incident], title=f"incident {args.incident} from {origin}:"
        ))
        findings = incident.get("findings") or []
        if findings:
            print("findings:")
            for f in findings:
                print(
                    f"  window {f['window_index']:>5}  "
                    f"[{f['t_start_s']:>9,.0f} s .. "
                    f"{f['t_end_s']:>9,.0f} s] "
                    f"value={f['value']:g} (threshold {f['threshold']:g})"
                )
        records = bundle.get("records") or []
        if records:
            print(
                f"recorder slice: {len(records)} windows "
                f"({records[0]['index']}..{records[-1]['index']}), "
                f"energy {sum(r['energy_j'] for r in records):,.0f} J"
            )
    else:  # export
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        ids = [args.incident] if args.incident else [
            i["id"] for i in incidents
        ]
        written = []
        for incident_id in ids:
            bundle = build_bundle(doc, incident_id)
            path = out / f"incident_{incident_id}.json"
            path.write_text(render_doc(bundle))
            written.append(path)
        print(
            f"exported {len(written)} bundle(s) from {origin} to {out}"
        )
        for path in written:
            print(f"  {path}")

    if args.check and open_ids:
        print(
            f"CHECK FAILED: {len(open_ids)} incident(s) still open: "
            f"{', '.join(open_ids)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _render_query_result(doc: dict) -> str:
    """Plain-text table of one /v1/query-shaped result dict."""
    lines = [
        f"{doc['series']} [{doc['agg']}] level {doc['level']} "
        f"step {doc['step_s']:g} s over "
        f"[{doc['t0_s']:,.0f}, {doc['t1_s']:,.0f}) — "
        f"{doc['rows_scanned']} rows scanned",
    ]
    for t, value in zip(doc["t_s"], doc["values"]):
        shown = "-" if value is None else f"{value:,.6g}"
        lines.append(f"  {t:>14,.0f}  {shown}")
    return "\n".join(lines)


def _obs_query(args) -> int:
    import json

    if args.check and args.store_dir is None:
        print("obs query --check needs --dir", file=sys.stderr)
        return 2
    if (args.store_dir is None) == (args.url is None):
        print(
            "obs query needs exactly one of --dir DIR or --url URL",
            file=sys.stderr,
        )
        return 2

    if args.url is not None:
        from .obs.health import fetch_url

        base = args.url.rstrip("/")
        if args.series is None:
            status, body = fetch_url(base + "/v1/series")
            if status != 200:
                print(
                    f"GET {base}/v1/series -> {status}", file=sys.stderr
                )
                return 1
            doc = json.loads(body)
            print(f"series @ {base} ({len(doc['series'])}):")
            for row in doc["series"]:
                print(f"  {row['name']:<28} [{row['agg']}]")
            return 0
        params = [f"series={args.series}"]
        for key in ("t0", "t1", "step", "agg", "level"):
            value = getattr(args, key)
            if value is not None:
                params.append(f"{key}={value}")
        status, body = fetch_url(base + "/v1/query?" + "&".join(params))
        doc = json.loads(body)
        if status != 200:
            print(
                f"query FAILED ({status}): {doc.get('error', body)}",
                file=sys.stderr,
            )
            return 1
        result = doc["query"]
        print(json.dumps(result) if args.json
              else _render_query_result(result))
        return 0

    from .obs.history import HistoryStore, select, verify_rollups

    store = HistoryStore.open(args.store_dir)
    try:
        if args.check:
            mismatches = verify_rollups(store)
            rollup_rows = sum(
                store.rows(level) for level in range(1, store.n_levels)
            )
            if mismatches:
                print(
                    f"CHECK FAILED: {len(mismatches)} rollup "
                    f"bucket(s) differ from their level-0 refold:",
                    file=sys.stderr,
                )
                for m in mismatches:
                    print(
                        f"  L{m['level']} bucket {m['bucket']} "
                        f"{m['series']} [{m['agg']}]: stored "
                        f"{m['stored']!r} != refold {m['refold']!r}",
                        file=sys.stderr,
                    )
                return 1
            print(
                f"rollups OK: {rollup_rows} rollup rows across "
                f"{store.n_levels - 1} level(s) refold bitwise from "
                f"{store.rows(0)} level-0 rows"
            )
            if args.series is None:
                return 0
        if args.series is None:
            print(f"series in {args.store_dir} ({len(store.columns)}):")
            for name, agg in store.columns:
                print(f"  {name:<28} [{agg}]")
            return 0
        span = store.time_span()
        if span is None:
            print("history store has no rows", file=sys.stderr)
            return 1
        window_s = store.window_s or 0.0
        t0 = args.t0 if args.t0 is not None else span[0]
        t1 = args.t1 if args.t1 is not None else span[1] + window_s
        step = (
            args.step if args.step is not None
            else max((t1 - t0) / 60.0, window_s)
        )
        result = select(
            store, args.series, t0, t1, step,
            agg=args.agg, level=args.level,
        )
        print(json.dumps(result.to_dict()) if args.json
              else _render_query_result(result.to_dict()))
        return 0
    finally:
        store.close()


def _obs_logs(args) -> int:
    """``repro obs logs``: query/tail/validate a structured event log."""
    import json

    if args.check and args.store_dir is None:
        print("obs logs --check needs --dir", file=sys.stderr)
        return 2
    if (args.store_dir is None) == (args.url is None):
        print(
            "obs logs needs exactly one of --dir DIR or --url URL",
            file=sys.stderr,
        )
        return 2
    limit = (
        args.limit if args.limit is not None
        else (20 if args.action == "tail" else 200)
    )

    from .obs.log import render_records

    if args.url is not None:
        from .obs.health import fetch_url

        base = args.url.rstrip("/")
        params = [f"limit={limit}"]
        for key in ("t0", "t1", "severity", "event", "window"):
            value = getattr(args, key)
            if value is not None:
                params.append(f"{key}={value}")
        status, body = fetch_url(base + "/v1/logs?" + "&".join(params))
        doc = json.loads(body)
        if status != 200:
            print(
                f"logs FAILED ({status}): {doc.get('error', body)}",
                file=sys.stderr,
            )
            return 1
        records = doc["logs"]
        if args.json:
            for rec in records:
                print(json.dumps(rec, sort_keys=True))
            return 0
        summary = doc["summary"]
        print(
            f"events @ {base}: {summary['emitted']} emitted "
            f"({summary['suppressed']} suppressed, "
            f"{summary['evicted']} evicted); showing {len(records)}"
        )
        if records:
            print(render_records(records))
        return 0

    from .obs.log import LogStore, select, tail

    store = LogStore.open(args.store_dir)
    try:
        if args.check:
            problems = store.check()
            if problems:
                print(
                    f"CHECK FAILED: {len(problems)} problem(s) in "
                    f"{args.store_dir}:",
                    file=sys.stderr,
                )
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                return 1
            print(
                f"log store OK: {store.records_resident()} records "
                f"across {store.segment_count()} segment(s), "
                f"{store.total_bytes():,} bytes"
            )
            return 0
        records = select(
            store.iter_records(args.t0, args.t1),
            min_severity=args.severity,
            event=args.event,
            window=args.window,
            limit=None if args.action == "tail" else limit,
        )
        if args.action == "tail":
            records = tail(records, limit)
        if args.json:
            for rec in records:
                print(json.dumps(rec, sort_keys=True))
            return 0
        summary = store.summary()
        print(
            f"event log {args.store_dir}: {summary['records']} records "
            f"in {summary['segments']} segment(s); showing "
            f"{len(records)}"
        )
        if records:
            print(render_records(records))
        return 0
    finally:
        store.close()


def _obs_history(args) -> int:
    from .obs.history import HistoryStore

    store = HistoryStore.open(args.store_dir)
    try:
        if args.action == "info":
            summary = store.summary()
            print(
                f"history store {args.store_dir}: "
                f"{store.rows(0)} windows, "
                f"{store.segment_count()} segments, "
                f"{summary['bytes']:,} bytes"
            )
            for level in summary["levels"]:
                span = level["span_s"]
                shown = "-" if span is None else f"{span:g} s"
                print(
                    f"  L{level['level']}: {level['rows']:>8} rows "
                    f"(+{level['dropped_rows']} gc'd) @ {shown}"
                )
            return 0
        if args.action == "compact":
            result = store.compact()
            store.sync()
            print(
                f"compacted {args.store_dir}: "
                f"{result['rewritten_segments']} segment(s) rewritten, "
                f"{result['removed_files']} file(s) removed"
            )
            return 0
        # gc
        if args.keep_s is None:
            print("obs history gc needs --keep-s", file=sys.stderr)
            return 2
        result = store.gc(args.keep_s)
        store.sync()
        dropped = sum(result["dropped_rows"].values())
        print(
            f"gc'd {args.store_dir}: {dropped} row(s) dropped across "
            f"{len(result['dropped_rows'])} level(s), "
            f"{result['removed_files']} file(s) removed"
        )
        return 0
    finally:
        store.close()


def _obs_summary_url(url: str) -> int:
    from .obs.health import fetch_url
    from .obs.metrics import (
        histogram_quantile,
        parse_histograms,
        parse_prometheus_text,
    )

    base = url.rstrip("/")
    text = fetch_url(base + "/metrics")[1]
    values = parse_prometheus_text(text)
    print(f"live metrics @ {base} ({len(values)} series):")
    if values:
        width = max(len(k) for k in values)
        for key, value in sorted(values.items()):
            print(f"  {key:<{width}} {value:>14g}")
    histograms = parse_histograms(text)
    if histograms:
        print()
        print("histogram quantiles:")
        print(
            f"  {'series':<52} {'count':>8} {'p50':>10} "
            f"{'p90':>10} {'p99':>10}"
        )
        for name, series in sorted(histograms.items()):
            for key, entry in sorted(series.items()):
                labels = (
                    "{" + ",".join(f"{k}={v}" for k, v in key) + "}"
                    if key else ""
                )
                shown = f"{name}{labels}"
                quantiles = [
                    histogram_quantile(entry["buckets"], q)
                    for q in (0.5, 0.9, 0.99)
                ]
                cells = " ".join(
                    f"{q:>10.4g}" if q is not None else f"{'-':>10}"
                    for q in quantiles
                )
                print(
                    f"  {shown:<52} {entry['count']:>8g} {cells}"
                )
    return 0


def _render_exact(exact, *, top: int) -> str:
    """Plain-text table of the cProfile per-function rows."""
    lines = ["exact per-function profile (cProfile):"]
    lines.append(
        f"  {'function':<48} {'ncalls':>8} {'self s':>9} {'cum s':>9}"
    )
    for row in exact.function_table(top=top):
        lines.append(
            f"  {row['function']:<48.48} {row['ncalls']:>8} "
            f"{row['self_s']:>9.4f} {row['cum_s']:>9.4f}"
        )
    return "\n".join(lines)


def _obs_profile(args) -> int:
    from .obs import runtime as obs_runtime
    from .obs.profiling import (
        DEFAULT_BUDGET_PATH,
        ExactProfiler,
        check_budget,
        load_budget,
        render_attribution,
        render_hot_stacks,
        render_memory_sites,
        write_profile_artifacts,
    )

    config = ExperimentConfig(
        fleet_nodes=args.nodes, days=args.days, seed=args.seed,
    )
    command = (
        f"repro obs profile {args.experiment} --nodes {args.nodes} "
        f"--days {args.days:g} --seed {args.seed}"
    )
    exact = ExactProfiler() if args.exact else None
    obs_runtime.start_profiling(
        interval_s=args.interval_ms / 1000.0, memory=args.memory,
    )
    try:
        if exact is not None:
            exact.start()
        try:
            result = run(args.experiment, config)
        finally:
            if exact is not None:
                exact.stop()
        profiler = obs_runtime.stop_profiling()
        spans = obs_runtime.state().tracer.finished
        paths = write_profile_artifacts(
            args.out, spans=spans, profiler=profiler, command=command,
        )
        print(f"===== profile: {args.experiment} ({result.title}) =====")
        print(render_attribution(spans, top=args.top))
        if profiler.samples:
            print()
            print("hottest sampled stacks:")
            print(render_hot_stacks(profiler.samples))
        if profiler.memory_sites:
            print()
            print("top allocation sites (tracemalloc):")
            print(render_memory_sites(profiler.memory_sites))
        if exact is not None:
            print()
            print(_render_exact(exact, top=args.top))
        print()
        print(f"collapsed stacks : {paths['collapsed']}")
        print(f"chrome trace     : {paths['chrome_trace']}")
        print(f"span timings     : {paths['timings']}")
        if args.check or args.budget is not None:
            budget = load_budget(args.budget or DEFAULT_BUDGET_PATH)
            verdict = check_budget(spans, budget)
            print()
            print(verdict.render())
            if args.check and not verdict.ok:
                return 1
        return 0
    finally:
        obs_runtime.disable()


def _obs_command(args) -> int:
    from .obs import manifest as obs_manifest

    if args.obs_command == "alerts":
        return _obs_alerts(args)
    if args.obs_command == "incidents":
        return _obs_incidents(args)
    if args.obs_command == "profile":
        return _obs_profile(args)
    if args.obs_command == "query":
        return _obs_query(args)
    if args.obs_command == "history":
        return _obs_history(args)
    if args.obs_command == "logs":
        return _obs_logs(args)
    if args.obs_command == "summary":
        if args.url is not None:
            return _obs_summary_url(args.url)
        if args.manifest is None:
            print(
                "obs summary needs a manifest path or --url",
                file=sys.stderr,
            )
            return 2
        doc = obs_manifest.load_manifest(args.manifest)
        print(obs_manifest.summarize_manifest(doc, top=args.top))
        return 0
    # diff
    diff = obs_manifest.diff_manifests(
        obs_manifest.load_manifest(args.a),
        obs_manifest.load_manifest(args.b),
        timing_tolerance_pct=args.timing_tolerance,
    )
    print(diff.render())
    return 0 if diff.clean else 1


def _finish_obs(command: str, config: dict, outputs, obs_dir,
                wall0: float, cpu0: float) -> None:
    """Write manifest.json + metrics.prom and print the run summary."""
    from .obs import manifest as obs_manifest

    paths = obs_manifest.write_run_artifacts(
        obs_dir,
        command=command,
        config=config,
        outputs=outputs,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
    )
    doc = obs_manifest.load_manifest(paths["manifest"])
    print(f"===== observability ({paths['manifest']}) =====")
    print(obs_manifest.summarize_manifest(doc))


def _finish_profile(command: str, profile_dir) -> None:
    """Stop the profiler, write its artifacts, print the hot spans."""
    from .obs import runtime as obs_runtime
    from .obs.profiling import (
        render_attribution,
        render_memory_sites,
        write_profile_artifacts,
    )

    profiler = obs_runtime.stop_profiling()
    st = obs_runtime.state()
    if profiler is None or st is None:
        return
    spans = st.tracer.finished
    paths = write_profile_artifacts(
        profile_dir, spans=spans, profiler=profiler, command=command,
    )
    print(f"===== profile ({profile_dir}) =====")
    print(render_attribution(spans))
    if profiler.memory_sites:
        print()
        print("top allocation sites (tracemalloc):")
        print(render_memory_sites(profiler.memory_sites))
    print()
    print(f"collapsed stacks : {paths['collapsed']}")
    print(f"chrome trace     : {paths['chrome_trace']}")
    print(f"span timings     : {paths['timings']}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in EXPERIMENT_IDS:
            print(exp_id)
        return 0

    if args.command == "obs":
        try:
            return _obs_command(args)
        except ReproError as exc:
            print(f"obs FAILED: {exc}", file=sys.stderr)
            return 1

    if args.command == "advise":
        try:
            return _advise(args)
        except (ReproError, OSError) as exc:
            print(f"advise FAILED: {exc}", file=sys.stderr)
            return 1

    if args.command == "campaign":
        from .obs import runtime as obs_runtime

        if args.obs:
            obs_runtime.enable()
        wall0, cpu0 = time.perf_counter(), time.process_time()
        try:
            status = _campaign(args)
        except (ReproError, OSError) as exc:
            print(f"campaign FAILED: {exc}", file=sys.stderr)
            return 1
        finally:
            if args.obs and obs_runtime.enabled():
                _finish_obs(
                    "repro campaign",
                    {
                        "nodes": args.nodes, "days": args.days,
                        "seed": args.seed, "shards": args.shards,
                        "workers": args.workers,
                        "unit_nodes": args.unit_nodes,
                        "window_s": args.window_s,
                        "lateness_s": args.lateness_s,
                        "shuffle_s": args.shuffle_s,
                        "dup_fraction": args.dup_fraction,
                    },
                    [],
                    args.obs_dir or "obs",
                    wall0, cpu0,
                )
                obs_runtime.disable()
        return status

    if args.command == "stream":
        from .obs import runtime as obs_runtime

        if args.obs:
            obs_runtime.enable()
        wall0, cpu0 = time.perf_counter(), time.process_time()
        try:
            status = _stream(args)
        except (ReproError, OSError) as exc:
            print(f"stream FAILED: {exc}", file=sys.stderr)
            return 1
        finally:
            if args.obs and obs_runtime.enabled():
                _finish_obs(
                    "repro stream",
                    {
                        "nodes": args.nodes, "days": args.days,
                        "seed": args.seed, "window_s": args.window_s,
                        "lateness_s": args.lateness_s,
                        "shuffle": args.shuffle,
                        "dup_fraction": args.dup_fraction,
                    },
                    [args.checkpoint] if args.checkpoint else [],
                    args.obs_dir or "obs",
                    wall0, cpu0,
                )
                obs_runtime.disable()
        return status

    if args.command == "serve":
        from .obs import runtime as obs_runtime

        if args.obs:
            obs_runtime.enable()
        wall0, cpu0 = time.perf_counter(), time.process_time()
        try:
            status = _serve(args)
        except (ReproError, OSError) as exc:
            print(f"serve FAILED: {exc}", file=sys.stderr)
            return 1
        finally:
            if args.obs and obs_runtime.enabled():
                _finish_obs(
                    "repro serve",
                    {
                        "nodes": args.nodes, "days": args.days,
                        "seed": args.seed, "window_s": args.window_s,
                        "lateness_s": args.lateness_s,
                        "objective": args.objective,
                        "max_slowdown": args.max_slowdown,
                    },
                    [],
                    args.obs_dir or "obs",
                    wall0, cpu0,
                )
                obs_runtime.disable()
        return status

    if args.command == "report":
        from .experiments.bundle import write_report

        config = ExperimentConfig(
            fleet_nodes=args.nodes,
            days=args.days,
            seed=args.seed,
            graph_scale=args.graph_scale,
        )
        try:
            path = write_report(
                args.out, config,
                include_extensions=not args.no_extensions,
            )
        except ReproError as exc:
            print(f"report FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"report written to {path}")
        return 0

    config = ExperimentConfig(
        fleet_nodes=args.nodes,
        days=args.days,
        seed=args.seed,
        graph_scale=args.graph_scale,
        out_dir=args.out,
    )
    targets = (
        list(EXPERIMENT_IDS)
        if args.experiment == "all"
        else [args.experiment]
    )
    from .obs import runtime as obs_runtime

    if args.obs:
        obs_runtime.enable()
    if args.profile:
        # Implies observability: samples are tagged with tracer spans.
        obs_runtime.start_profiling()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    status = 0
    outputs = []
    for exp_id in targets:
        t0 = time.time()
        try:
            result = run(exp_id, config)
        except ReproError as exc:
            print(f"[{exp_id}] FAILED: {exc}", file=sys.stderr)
            status = 1
            continue
        elapsed = time.time() - t0
        if args.out:
            outputs.append(f"{args.out}/{exp_id}.txt")
        if getattr(args, "csv", False) and args.out:
            from .experiments.export import export_csv

            export_csv(result, args.out)
        print(f"===== {exp_id}: {result.title} ({elapsed:.1f} s) =====")
        print(result.text)
        print()
    if args.profile and obs_runtime.enabled():
        _finish_profile(
            f"repro run {args.experiment}",
            args.profile_dir or args.out or "profile-artifacts",
        )
    if args.obs and obs_runtime.enabled():
        _finish_obs(
            f"repro run {args.experiment}",
            {
                "fleet_nodes": args.nodes, "days": args.days,
                "seed": args.seed, "graph_scale": args.graph_scale,
                "out_dir": args.out,
            },
            outputs,
            args.obs_dir or args.out or "obs",
            wall0, cpu0,
        )
    if (args.obs or args.profile) and obs_runtime.enabled():
        obs_runtime.disable()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
