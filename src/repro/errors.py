"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SpecError(ReproError):
    """A hardware specification is inconsistent or out of range."""


class KernelError(ReproError):
    """A kernel descriptor is malformed (negative flops, bad locality, ...)."""


class CapError(ReproError):
    """A frequency or power cap request is outside the device's range."""


class GraphError(ReproError):
    """A graph structure is invalid (bad CSR, dangling edge, ...)."""


class ScheduleError(ReproError):
    """The scheduler was asked to do something impossible (job too large...)."""


class TelemetryError(ReproError):
    """Telemetry data is malformed or inconsistent with its schema."""


class JoinError(ReproError):
    """Telemetry and scheduler records cannot be joined."""


class ProjectionError(ReproError):
    """The savings projection was given inconsistent inputs."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""


class ObservabilityError(ReproError):
    """A metric, trace, or manifest operation is invalid."""


class HealthError(ObservabilityError):
    """An alert rule, drift reference, or health endpoint is invalid."""


class ForensicsError(ObservabilityError):
    """A flight-recorder, detector, or incident operation is invalid."""


class HistoryError(ObservabilityError):
    """A history-store, rollup, range-query, or SLO operation is invalid."""


class LogError(ObservabilityError):
    """An event-log, log-segment, or log-query operation is invalid."""


class ServeError(ReproError):
    """A control-plane request, objective, or server operation is invalid."""
