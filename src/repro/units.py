"""Unit helpers.

The library stores all quantities in SI base units internally:

* power in watts (W)
* energy in joules (J)
* time in seconds (s)
* frequency in hertz (Hz)
* data sizes in bytes (B)
* rates in bytes per second (B/s) and FLOP/s

These helpers convert between base units and the "paper units" (MHz caps,
MWh campaign energies, GiB working sets, TFLOP/s roofs) used at the API
boundary and in reports.  They accept scalars or NumPy arrays and always
return the same shape they were given.
"""

from __future__ import annotations

# -- scale factors -----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KIB = 1024
MIB = 1024**2
GIB = 1024**3

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
JOULES_PER_WH = 3600.0
JOULES_PER_KWH = 3.6e6
JOULES_PER_MWH = 3.6e9


# -- frequency ---------------------------------------------------------------

def mhz(value):
    """Convert MHz to Hz."""
    return value * MEGA


def to_mhz(hz):
    """Convert Hz to MHz."""
    return hz / MEGA


# -- rates -------------------------------------------------------------------

def tflops(value):
    """Convert TFLOP/s to FLOP/s."""
    return value * TERA


def to_tflops(flops):
    """Convert FLOP/s to TFLOP/s."""
    return flops / TERA


def gbps(value):
    """Convert GB/s (decimal) to B/s."""
    return value * GIGA


def to_gbps(bps):
    """Convert B/s to GB/s (decimal)."""
    return bps / GIGA


def tbps(value):
    """Convert TB/s (decimal) to B/s."""
    return value * TERA


# -- sizes -------------------------------------------------------------------

def kib(value):
    """Convert KiB to bytes."""
    return value * KIB


def mib(value):
    """Convert MiB to bytes."""
    return value * MIB


def gib(value):
    """Convert GiB to bytes."""
    return value * GIB


def to_mib(nbytes):
    """Convert bytes to MiB."""
    return nbytes / MIB


# -- energy ------------------------------------------------------------------

def wh(value):
    """Convert watt-hours to joules."""
    return value * JOULES_PER_WH


def mwh(value):
    """Convert megawatt-hours to joules."""
    return value * JOULES_PER_MWH


def to_wh(joules):
    """Convert joules to watt-hours."""
    return joules / JOULES_PER_WH


def to_kwh(joules):
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def to_mwh(joules):
    """Convert joules to megawatt-hours."""
    return joules / JOULES_PER_MWH


# -- time --------------------------------------------------------------------

def hours(value):
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value):
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def to_hours(seconds):
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def to_days(seconds):
    """Convert seconds to days."""
    return seconds / SECONDS_PER_DAY


# -- formatting --------------------------------------------------------------

def fmt_duration(seconds: float) -> str:
    """Format a duration in human units: ``90 -> '1 min 30 s'``.

    Sub-minute values stay in seconds; non-finite sentinels (empty
    buffers, drained frontiers) render as ``'-'``.  Largest two units
    only — this is for dashboards, not archival precision.
    """
    if seconds != seconds or seconds in (float("inf"), float("-inf")):
        return "-"
    sign = "-" if seconds < 0 else ""
    s = abs(float(seconds))
    if s < 60:
        return f"{sign}{s:.0f} s"
    if s < SECONDS_PER_HOUR:
        m, rem = divmod(s, 60)
        return f"{sign}{m:.0f} min" + (f" {rem:.0f} s" if rem >= 1 else "")
    if s < SECONDS_PER_DAY:
        h, rem = divmod(s, SECONDS_PER_HOUR)
        m = rem // 60
        return f"{sign}{h:.0f} h" + (f" {m:.0f} min" if m >= 1 else "")
    d, rem = divmod(s, SECONDS_PER_DAY)
    h = rem // SECONDS_PER_HOUR
    return f"{sign}{d:.0f} d" + (f" {h:.0f} h" if h >= 1 else "")


def fmt_si(value: float, unit: str, digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``fmt_si(1.2e12, 'B/s')``.

    Only positive-exponent prefixes are used; values below 1 are printed
    bare.  This is a reporting helper, not a parser.
    """
    prefixes = [(1e15, "P"), (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]
    for scale, prefix in prefixes:
        if abs(value) >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}g} {unit}"
