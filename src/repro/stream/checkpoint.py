"""Checkpoint/resume for the streaming engine.

One compressed npz holds everything the engine needs to continue a
stream exactly where it stopped: the reorder buffer (pending samples,
sequence counter, watermark clocks, ingest counters) and the campaign
accumulator (cube arrays, histograms, CPU energy).  Restarting from a
checkpoint and feeding the rest of the stream converges to the same
cube, bitwise, as the uninterrupted run — the fold state and the
arrival-order bookkeeping are both preserved.

The scheduler log is *not* serialized (it is the join's reference data,
not stream state); the resume caller provides the same log, and the
accumulator validates that its domain/class axes match.
"""

from __future__ import annotations

import numpy as np

from ..errors import TelemetryError
from ..scheduler.log import SchedulerLog
from .engine import StreamEngine

#: Format version written into every checkpoint.
CHECKPOINT_VERSION = 1


def save_checkpoint(engine: StreamEngine, path) -> None:
    """Serialize the engine's full state to a compressed npz."""
    arrays = {
        "version": np.array([CHECKPOINT_VERSION], dtype=np.int64),
        "engine_chunks_in": np.array([engine.chunks_in], dtype=np.int64),
    }
    arrays.update(engine.buffer.state_arrays())
    arrays.update(engine.accumulator.state_arrays())
    np.savez_compressed(path, **arrays)


def load_checkpoint(path, log: SchedulerLog) -> StreamEngine:
    """Rebuild an engine mid-stream from a checkpoint.

    ``log`` must be the same scheduler log the checkpointed engine was
    joining against (validated via the cube axes).
    """
    with np.load(path, allow_pickle=False) as data:
        arrays = dict(data)
    version = int(arrays.get("version", np.array([0]))[0])
    if version != CHECKPOINT_VERSION:
        raise TelemetryError(
            f"unsupported checkpoint version {version} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    interval, window, lateness, aggregate = (
        float(x) for x in arrays["buf_config"]
    )
    engine = StreamEngine(
        log,
        interval_s=interval,
        window_s=window,
        lateness_s=lateness,
        aggregate=bool(aggregate),
    )
    engine.buffer.load_state_arrays(arrays)
    engine.accumulator.load_state_arrays(arrays)
    engine.chunks_in = int(arrays["engine_chunks_in"][0])
    return engine
