"""Sharded campaign engine: fleet-scale ingest across worker processes.

The paper's subject is 9,408 nodes observed for three months; a single
process folding one :class:`~repro.stream.engine.StreamEngine` cannot
reach that scale in tolerable wall-clock time.  This module shards the
whole pipeline — telemetry *generation*, event-time reordering, and the
campaign fold — by node range across worker processes, and merges the
shard results into one campaign cube that is **bitwise identical** to
the single-process fold.

Invariance contract
-------------------

Floating-point addition is not associative, so "same cube at any shard
count" has to pin a reduction tree that does not depend on how the work
was distributed.  The canonical fold is defined over fixed-size **fold
units** (``unit_nodes`` consecutive nodes, default 8):

1. every unit renders its nodes' telemetry (per-node RNG substreams via
   :func:`repro.rng.derive_seed`, so the samples are identical whether
   generated in 1 process or 16),
2. the unit's rows replay in event-time order through a private
   :class:`~repro.stream.buffer.ReorderBuffer` into a private
   :class:`~repro.core.join.CampaignAccumulator` (the same fold the
   batch join and the stream engine use), and
3. the driver merges the unit cubes **left-to-right in unit order**
   with :func:`repro.core.pipeline.merge_cubes`.

Shards are contiguous runs of units and workers only decide *where* a
unit cube is computed — never the unit boundaries nor the merge order —
so the campaign cube is invariant to both the shard count and the
worker count, bit for bit.  ``tests/stream/test_shard.py`` asserts this
at shard counts 1/2/4/8, for uneven shards, 1-node shards, and across
checkpoint/resume.

Checkpoints
-----------

With a checkpoint directory, each shard persists its completed unit
states to ``shard_<i>.npz`` every ``checkpoint_every`` units.  A rerun
with ``resume=True`` loads the completed prefix (validated against the
shard plan, the config, and the seeds) and continues with the next
unit; the resumed campaign cube is bitwise identical to an
uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants, units
from ..core.join import CampaignAccumulator, CampaignCube
from ..core.pipeline import merge_cubes
from ..errors import TelemetryError
from ..obs import runtime as _obs
from ..parallel import chunked_map, partition
from ..rng import derive_seed
from ..scheduler import SlurmSimulator, default_mix
from ..scheduler.log import SchedulerLog
from ..telemetry import FleetTelemetryGenerator
from .buffer import DEFAULT_WINDOW_S, ReorderBuffer
from .engine import IngestStats, StreamSnapshot, compute_snapshot
from .sources import DEFAULT_CHUNK_TICKS, perturb, replay_store

#: Format version written into every per-shard checkpoint.
SHARD_CHECKPOINT_VERSION = 1

#: Nodes per fold unit.  Part of the invariance contract: the unit
#: grid — not the shard count — fixes the merge tree, so changing this
#: value changes the (float-rounding-level) grouping of the fold.
DEFAULT_UNIT_NODES = 8


@dataclass(frozen=True)
class ShardConfig:
    """Stream/fold parameters shared by every shard of one campaign.

    ``shuffle_s``/``dup_fraction`` re-deliver every unit's stream
    through :func:`repro.stream.sources.perturb` (adversarial arrival
    order / duplicate records).  The perturbation seed derives from the
    *unit* — not the shard — so delivery chaos is part of the invariant
    fold, and duplicates of boundary nodes dedup identically at every
    shard count.  Set ``lateness_s >= shuffle_s`` so nothing is
    dropped as late.
    """

    interval_s: float = constants.TELEMETRY_INTERVAL_S
    window_s: float = DEFAULT_WINDOW_S
    lateness_s: float = 0.0
    chunk_ticks: int = DEFAULT_CHUNK_TICKS
    unit_nodes: int = DEFAULT_UNIT_NODES
    checkpoint_every: int = 1
    shuffle_s: float = 0.0
    dup_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.unit_nodes <= 0:
            raise TelemetryError("unit_nodes must be positive")
        if self.checkpoint_every <= 0:
            raise TelemetryError("checkpoint_every must be positive")

    def to_array(self) -> np.ndarray:
        return np.array(
            [
                self.interval_s,
                self.window_s,
                self.lateness_s,
                float(self.chunk_ticks),
                float(self.unit_nodes),
                self.shuffle_s,
                self.dup_fraction,
            ]
        )


def plan_units(n_nodes: int, unit_nodes: int) -> List[Tuple[int, int]]:
    """The canonical fold-unit grid: fixed-size contiguous node ranges.

    Depends only on the fleet size and the unit size — never on the
    shard or worker count — because the unit grid *is* the reduction
    tree of the campaign merge.
    """
    if n_nodes <= 0:
        raise TelemetryError("fleet must have at least one node")
    if unit_nodes <= 0:
        raise TelemetryError("unit_nodes must be positive")
    return [
        (lo, min(lo + unit_nodes, n_nodes))
        for lo in range(0, n_nodes, unit_nodes)
    ]


def plan_shards(
    n_units: int, n_shards: int
) -> List[Tuple[int, int]]:
    """Assign contiguous unit ranges to shards (balanced, never empty).

    Requesting more shards than units clamps to one unit per shard, so
    a 4-unit fleet sharded 16 ways runs 4 shards — the spare shard
    slots simply do not exist rather than running empty.
    """
    if n_shards <= 0:
        raise TelemetryError("shards must be >= 1")
    return partition(n_units, n_shards)


# -- per-unit fold (runs inside worker processes) ----------------------------------

#: Order of the per-unit ingest counters persisted next to each unit
#: cube (float64 so one array carries counts and the event-time clock).
_COUNTER_FIELDS = (
    "chunks_in",
    "samples_in",
    "duplicates",
    "late_dropped",
    "windows_folded",
    "samples_folded",
    "peak_resident",
    "max_event_time_s",
)


def _fold_unit(
    gen: FleetTelemetryGenerator,
    template: CampaignAccumulator,
    lo: int,
    hi: int,
    cfg: ShardConfig,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Generate + reorder + fold one fold unit; return its cube state."""
    buf = ReorderBuffer(
        interval_s=cfg.interval_s,
        window_s=cfg.window_s,
        lateness_s=cfg.lateness_s,
    )
    acc = template.clone_empty()
    store = gen.generate(node_ids=range(lo, hi))
    source = replay_store(store, chunk_ticks=cfg.chunk_ticks)
    if cfg.shuffle_s > 0 or cfg.dup_fraction > 0:
        # Unit-derived seed: delivery chaos is identical at every
        # shard count because the unit grid is.
        source = perturb(
            source,
            seed=derive_seed(gen.seed, "shard-delivery", lo),
            lateness_s=cfg.shuffle_s,
            dup_fraction=cfg.dup_fraction,
        )
    chunks_in = 0
    for chunk in source:
        chunks_in += 1
        for window in buf.push(chunk):
            acc.update(window)
    for window in buf.flush():
        acc.update(window)
    counters = np.array(
        [
            float(chunks_in),
            float(buf.samples_in),
            float(buf.duplicates),
            float(buf.late_dropped),
            float(buf.windows_emitted),
            float(buf.samples_out),
            float(buf.peak_resident),
            buf.max_event_time_s,
        ]
    )
    return acc.state_arrays(), counters


def _save_shard_checkpoint(
    path,
    *,
    units: Sequence[Tuple[int, int]],
    cfg: ShardConfig,
    fleet_nodes: int,
    seed: int,
    states: List[Dict[str, np.ndarray]],
    counters: List[np.ndarray],
) -> None:
    """Persist a shard's completed unit states (atomic rename)."""
    arrays: Dict[str, np.ndarray] = {
        "version": np.array([SHARD_CHECKPOINT_VERSION], dtype=np.int64),
        "shard_units": np.array(units, dtype=np.int64),
        "shard_config": cfg.to_array(),
        "shard_identity": np.array([fleet_nodes, seed], dtype=np.int64),
        "n_done": np.array([len(states)], dtype=np.int64),
    }
    for j, (state, cnt) in enumerate(zip(states, counters)):
        for key, value in state.items():
            arrays[f"u{j}_{key}"] = value
        arrays[f"u{j}_counters"] = cnt
    path = Path(path)
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, **arrays)
    tmp.replace(path)


def _load_shard_checkpoint(
    path,
    *,
    units: Sequence[Tuple[int, int]],
    cfg: ShardConfig,
    fleet_nodes: int,
    seed: int,
) -> Tuple[List[Dict[str, np.ndarray]], List[np.ndarray]]:
    """Load a shard checkpoint, validating it belongs to this plan."""
    with np.load(path, allow_pickle=False) as data:
        arrays = dict(data)
    version = int(arrays.get("version", np.array([0]))[0])
    if version != SHARD_CHECKPOINT_VERSION:
        raise TelemetryError(
            f"unsupported shard checkpoint version {version} "
            f"(expected {SHARD_CHECKPOINT_VERSION})"
        )
    saved_units = [tuple(int(x) for x in row) for row in arrays["shard_units"]]
    expected = [tuple(int(x) for x in row) for row in np.array(units)]
    if saved_units[: len(expected)] != expected[: len(saved_units)]:
        raise TelemetryError(
            f"shard checkpoint {path} was written for different fold "
            f"units — refusing to resume"
        )
    if not np.array_equal(arrays["shard_config"], cfg.to_array()):
        raise TelemetryError(
            f"shard checkpoint {path} was written with a different "
            f"stream config — refusing to resume"
        )
    if not np.array_equal(
        arrays["shard_identity"],
        np.array([fleet_nodes, seed], dtype=np.int64),
    ):
        raise TelemetryError(
            f"shard checkpoint {path} belongs to a different campaign "
            f"(fleet/seed mismatch) — refusing to resume"
        )
    n_done = min(int(arrays["n_done"][0]), len(expected))
    states: List[Dict[str, np.ndarray]] = []
    counters: List[np.ndarray] = []
    for j in range(n_done):
        prefix = f"u{j}_"
        state = {
            key[len(prefix):]: value
            for key, value in arrays.items()
            if key.startswith(prefix) and key != f"{prefix}counters"
        }
        states.append(state)
        counters.append(np.asarray(arrays[f"{prefix}counters"]))
    return states, counters


def _shard_task(
    log_arrays: dict,
    fleet_nodes: int,
    seed: int,
    units: Sequence[Tuple[int, int]],
    cfg: ShardConfig,
    checkpoint_path: Optional[str],
    resume: bool,
    max_units: Optional[int],
) -> Tuple[List[Dict[str, np.ndarray]], List[np.ndarray]]:
    """One shard: fold its units in order (runs inside a worker process).

    Returns the per-unit accumulator states *unmerged* — the driver owns
    the canonical left-to-right merge over the global unit order, which
    is what makes the campaign cube shard-count invariant.
    """
    log = SchedulerLog.from_arrays(log_arrays)
    mix = default_mix(fleet_nodes=fleet_nodes)
    gen = FleetTelemetryGenerator(
        log, mix, seed=seed, interval_s=cfg.interval_s
    )
    template = CampaignAccumulator(log, interval_s=cfg.interval_s)
    states: List[Dict[str, np.ndarray]] = []
    counters: List[np.ndarray] = []
    if resume and checkpoint_path and Path(checkpoint_path).exists():
        states, counters = _load_shard_checkpoint(
            checkpoint_path,
            units=units,
            cfg=cfg,
            fleet_nodes=fleet_nodes,
            seed=seed,
        )
    start = len(states)
    if start:
        _obs.log_event(
            "info", "shard.checkpoint_resume",
            f"resumed {start}/{len(units)} fold units from checkpoint",
            t_s=float(counters[-1][-1]) if counters else 0.0,
            unit=start - 1, units_done=start,
        )
    dirty = 0
    for j in range(start, len(units)):
        if max_units is not None and j >= max_units:
            break
        lo, hi = units[j]
        with _obs.span("shard.unit", node_lo=lo, node_hi=hi):
            state, cnt = _fold_unit(gen, template, lo, hi, cfg)
        states.append(state)
        counters.append(cnt)
        _obs.counter_inc("shard_units_total")
        dirty += 1
        if checkpoint_path and (
            dirty >= cfg.checkpoint_every or j + 1 == len(units)
        ):
            _save_shard_checkpoint(
                checkpoint_path,
                units=units,
                cfg=cfg,
                fleet_nodes=fleet_nodes,
                seed=seed,
                states=states,
                counters=counters,
            )
            _obs.log_event(
                "info", "shard.checkpoint_write",
                f"checkpointed {len(states)}/{len(units)} fold units",
                t_s=float(counters[-1][-1]) if counters else 0.0,
                unit=j, node=int(lo), units_done=len(states),
            )
            dirty = 0
    if checkpoint_path and dirty:
        _save_shard_checkpoint(
            checkpoint_path,
            units=units,
            cfg=cfg,
            fleet_nodes=fleet_nodes,
            seed=seed,
            states=states,
            counters=counters,
        )
        _obs.log_event(
            "info", "shard.checkpoint_write",
            f"checkpointed {len(states)}/{len(units)} fold units",
            t_s=float(counters[-1][-1]) if counters else 0.0,
            unit=len(states) - 1, units_done=len(states),
        )
    return states, counters


# -- the driver --------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedCampaign:
    """The result of one sharded campaign run."""

    log: SchedulerLog
    cube: CampaignCube
    stats: IngestStats
    shards: int
    workers: int
    n_units: int
    units_done: int
    unit_nodes: int
    complete: bool
    wall_s: float

    @property
    def samples_per_s(self) -> float:
        """End-to-end generate+reorder+fold throughput (GPU samples)."""
        gpu_samples = self.stats.samples_folded * constants.GPUS_PER_NODE
        return gpu_samples / self.wall_s if self.wall_s > 0 else 0.0

    def snapshot(self, **kwargs) -> StreamSnapshot:
        """Table IV/V/VI + fleet advice from the merged cube."""
        return compute_snapshot(self.cube, self.stats, **kwargs)


def _merged_stats(
    counters: List[np.ndarray], *, lateness_s: float, complete: bool
) -> IngestStats:
    """Fleet-wide ingest statistics from the per-unit counter arrays.

    Counts sum across units; ``peak_resident_samples`` is the maximum
    *per-unit* peak (each worker folds one unit's buffer at a time, so
    a worker's residency never exceeds its largest unit's peak).
    """
    stacked = (
        np.stack(counters) if counters else np.zeros((0, len(_COUNTER_FIELDS)))
    )
    total = {
        name: stacked[:, i].sum() if len(stacked) else 0.0
        for i, name in enumerate(_COUNTER_FIELDS)
    }
    max_event = (
        float(stacked[:, 7].max()) if len(stacked) else float("-inf")
    )
    peak = int(stacked[:, 6].max()) if len(stacked) else 0
    sealed = float("inf") if complete else max_event
    return IngestStats(
        chunks_in=int(total["chunks_in"]),
        samples_in=int(total["samples_in"]),
        duplicates=int(total["duplicates"]),
        late_dropped=int(total["late_dropped"]),
        windows_folded=int(total["windows_folded"]),
        samples_folded=int(total["samples_folded"]),
        resident_samples=0,
        peak_resident_samples=peak,
        max_event_time_s=max_event,
        watermark_s=(
            max_event - lateness_s
            if np.isfinite(max_event)
            else float("-inf")
        ),
        sealed_until_s=sealed,
        watermark_lag_s=0.0,
    )


def merge_unit_states(
    log: SchedulerLog,
    states: Sequence[Dict[str, np.ndarray]],
    *,
    interval_s: float = constants.TELEMETRY_INTERVAL_S,
) -> CampaignCube:
    """Left-fold per-unit accumulator states into one campaign cube.

    The states must be in canonical unit order; the fold is the exact
    addition sequence ``((u0 + u1) + u2) + ...``, so any prefix of it is
    also a valid (resumable) partial campaign.
    """
    if not states:
        raise TelemetryError("no unit states to merge")
    loader = CampaignAccumulator(log, interval_s=interval_s)
    cubes: List[CampaignCube] = []
    for state in states:
        loader.load_state_arrays(state)
        cubes.append(loader.cube(copy=False))
    cube = cubes[0]
    for other in cubes[1:]:
        cube = merge_cubes(cube, other)
    return cube


def run_sharded_campaign(
    *,
    fleet_nodes: int = 96,
    days: float = 4.0,
    seed: int = 0,
    shards: int = 1,
    workers: int = 0,
    cfg: Optional[ShardConfig] = None,
    checkpoint_dir=None,
    resume: bool = False,
    max_units_per_shard: Optional[int] = None,
    log: Optional[SchedulerLog] = None,
) -> ShardedCampaign:
    """Run one campaign sharded by node range across worker processes.

    ``shards`` fixes the work partition (contiguous runs of fold
    units); ``workers`` only sets the process-pool width (``<= 1`` runs
    the shards serially in-process).  The merged cube is bitwise
    identical for every ``(shards, workers)`` combination — see the
    module docstring for the contract.

    With ``checkpoint_dir``, each shard persists completed units to
    ``shard_<i>.npz``; ``resume=True`` continues from those files.
    ``max_units_per_shard`` stops every shard after that many units
    (a bounded partial run: the returned campaign has
    ``complete=False`` and folds only the finished units — rerun with
    ``resume=True`` to finish).
    """
    cfg = cfg if cfg is not None else ShardConfig()
    wall0 = time.perf_counter()
    with _obs.span(
        "shard.campaign", fleet_nodes=fleet_nodes, shards=shards,
        workers=workers,
    ):
        if log is None:
            mix = default_mix(fleet_nodes=fleet_nodes)
            with _obs.span("shard.simulate"):
                log = SlurmSimulator(mix).run(units.days(days), rng=seed)
        telemetry_seed = seed + 1000
        log_arrays = log.to_arrays()

        unit_grid = plan_units(log.n_nodes, cfg.unit_nodes)
        shard_ranges = plan_shards(len(unit_grid), shards)
        paths: List[Optional[str]] = [None] * len(shard_ranges)
        if checkpoint_dir is not None:
            ckpt = Path(checkpoint_dir)
            ckpt.mkdir(parents=True, exist_ok=True)
            paths = [
                str(ckpt / f"shard_{i:03d}.npz")
                for i in range(len(shard_ranges))
            ]
        tasks = [
            (
                log_arrays,
                log.n_nodes,
                telemetry_seed,
                unit_grid[lo:hi],
                cfg,
                paths[i],
                resume,
                max_units_per_shard,
            )
            for i, (lo, hi) in enumerate(shard_ranges)
        ]
        outs = chunked_map(_shard_task, tasks, workers=workers)

        states: List[Dict[str, np.ndarray]] = []
        counters: List[np.ndarray] = []
        for shard_states, shard_counters in outs:
            states.extend(shard_states)
            counters.extend(shard_counters)
        complete = len(states) == len(unit_grid)
        with _obs.span("shard.merge", n_units=len(states)):
            cube = merge_unit_states(
                log, states, interval_s=cfg.interval_s
            )
    wall_s = time.perf_counter() - wall0
    return ShardedCampaign(
        log=log,
        cube=cube,
        stats=_merged_stats(
            counters, lateness_s=cfg.lateness_s, complete=complete
        ),
        shards=len(shard_ranges),
        workers=workers,
        n_units=len(unit_grid),
        units_done=len(states),
        unit_nodes=cfg.unit_nodes,
        complete=complete,
        wall_s=wall_s,
    )
