"""Event-time reorder/dedup buffer with watermarks.

Real out-of-band collection is not tidy: per-node pollers restart,
samples arrive out of order, network retries duplicate records, and
whole racks go quiet for a window.  This module turns that arrival
stream back into the *canonical* event-time stream the batch pipeline
analyzes: fixed event-time windows, each sorted by ``(time, node)`` and
deduplicated, released only once the watermark guarantees no admissible
sample for them is still in flight.

Semantics
---------

* **Watermark** — ``max(event time seen) - allowed_lateness_s``.  A
  window ``[w0, w1)`` seals when the watermark passes ``w1``; its
  samples are emitted as one canonical chunk and freed, so resident
  state is bounded by the reorder horizon, never by the stream length.
* **Late samples** — arrivals with event time below the sealed frontier
  are counted and dropped (they missed their window).
* **Duplicates** — two samples with the same ``(time, node)`` key inside
  the reorder horizon: the first arrival wins, later copies are counted
  and discarded at seal time.  Copies separated by more than the
  reorder horizon surface as late drops instead.
* **Aggregation** — with ``aggregate=True`` the buffer accepts raw
  sensor-cadence samples (the paper's 2 s feed) and mean-aggregates
  each sealed window onto the 15 s analysis grid with the same
  floor-window rule as :func:`repro.telemetry.sampler.aggregate_sensor_trace`.

Layout
------

Resident samples live as a *list of arrival chunks* that is only
consolidated into contiguous columns when a watermark advance seals
windows.  Pushing is therefore O(chunk) amortized — the previous
layout re-concatenated every resident column on every arrival, which
made a quiet stream (no seals) quadratic in the reorder horizon.  An
in-order arrival chunk is retained by reference (no copy at all); the
consolidation at seal time re-copies each resident sample once per
seal, and seals are paced by the watermark, not by arrivals.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .. import constants
from ..errors import TelemetryError
from ..obs import runtime as _obs
from ..telemetry.schema import TelemetryChunk

#: Default event-time window: 40 aggregated ticks (10 minutes).
DEFAULT_WINDOW_S = 40 * constants.TELEMETRY_INTERVAL_S


def _empty_like_columns() -> Dict[str, np.ndarray]:
    return {
        "time": np.empty(0, dtype=np.float64),
        "node": np.empty(0, dtype=np.int32),
        "gpu": np.empty((0, constants.GPUS_PER_NODE), dtype=np.float32),
        "cpu": np.empty(0, dtype=np.float32),
        "seq": np.empty(0, dtype=np.int64),
    }


class ReorderBuffer:
    """Bounded reorder/dedup stage between ingestion and the fold."""

    def __init__(
        self,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
        window_s: float = DEFAULT_WINDOW_S,
        lateness_s: float = 0.0,
        aggregate: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError("interval must be positive")
        if window_s < interval_s:
            raise TelemetryError("window must cover at least one tick")
        if lateness_s < 0:
            raise TelemetryError("allowed lateness must be >= 0")
        self.interval_s = interval_s
        self.window_s = window_s
        self.lateness_s = lateness_s
        self.aggregate = aggregate

        #: Pending arrival chunks (column dicts), consolidated lazily at
        #: seal time; ``_n_resident`` tracks the total row count.
        self._pending: List[Dict[str, np.ndarray]] = []
        self._n_resident = 0
        self._next_seq = 0
        self.max_event_time_s = float("-inf")
        self.sealed_until_s = 0.0

        self.samples_in = 0
        self.duplicates = 0
        self.late_dropped = 0
        self.windows_emitted = 0
        self.samples_out = 0
        self.peak_resident = 0

    # -- properties ---------------------------------------------------------------

    @property
    def resident_samples(self) -> int:
        """Samples currently buffered (not yet sealed)."""
        return self._n_resident

    @property
    def watermark_s(self) -> float:
        """Event time below which no new sample is expected."""
        if self.max_event_time_s == float("-inf"):
            return float("-inf")
        return self.max_event_time_s - self.lateness_s

    @property
    def watermark_lag_s(self) -> float:
        """Distance between the newest event and the sealed frontier."""
        if self.max_event_time_s == float("-inf"):
            return 0.0
        return max(0.0, self.max_event_time_s - self.sealed_until_s)

    def resident_bound(
        self, rows_per_tick: float, max_chunk_rows: int = 0
    ) -> int:
        """Upper bound on resident samples for admissible delivery.

        Delivery is *admissible* when no sample arrives more than
        ``lateness_s`` of event time behind the newest event already
        delivered (what :func:`repro.stream.sources.perturb`
        guarantees).  Resident events then span at most one open window
        plus one not-yet-sealed window plus the lateness horizon, and
        the peak is measured after an arrival chunk lands but before
        sealing — hence the ``max_chunk_rows`` term.  ``rows_per_tick``
        must count duplicates still in flight.
        """
        ticks = (2 * self.window_s + self.lateness_s) / self.interval_s
        return int(np.ceil((ticks + 1) * rows_per_tick) + max_chunk_rows)

    # -- ingestion ----------------------------------------------------------------

    def push(self, chunk: TelemetryChunk) -> List[TelemetryChunk]:
        """Absorb one arrival chunk; return any windows it sealed.

        Traced as a ``stream.push`` span when observability is on; the
        disabled wrapper is a global read and a branch (< 2 % budget,
        enforced by ``benchmarks/bench_batch.py --overhead-only``).
        """
        # Read the module global directly: a function call here would be
        # the single biggest cost of the disabled path.
        st = _obs._STATE
        if st is None:
            return self._push_impl(chunk)
        with st.tracer.span("stream.push") as sp:
            out = self._push_impl(chunk)
            sp.set(rows=len(chunk.time_s), sealed_windows=len(out))
        return out

    def _push_impl(self, chunk: TelemetryChunk) -> List[TelemetryChunk]:
        """Uninstrumented body of :meth:`push` (the timed hot path)."""
        t = np.asarray(chunk.time_s, dtype=np.float64)
        n = len(t)
        self.samples_in += n
        keep = t >= self.sealed_until_s
        n_new = int(keep.sum())
        if n_new < n:
            self.late_dropped += n - n_new
        if n_new:
            seq = np.arange(
                self._next_seq, self._next_seq + n_new, dtype=np.int64
            )
            self._next_seq += n_new
            if n_new == n:
                # Nothing late: retain the arrival columns by reference.
                cols = {
                    "time": t,
                    "node": chunk.node_id,
                    "gpu": chunk.gpu_power_w,
                    "cpu": chunk.cpu_power_w,
                    "seq": seq,
                }
            else:
                cols = {
                    "time": t[keep],
                    "node": chunk.node_id[keep],
                    "gpu": chunk.gpu_power_w[keep],
                    "cpu": chunk.cpu_power_w[keep],
                    "seq": seq,
                }
            self._pending.append(cols)
            self._n_resident += n_new
        if n:
            self.max_event_time_s = max(
                self.max_event_time_s, float(t.max())
            )
        self.peak_resident = max(self.peak_resident, self._n_resident)

        wm = self.watermark_s
        if wm == float("-inf"):
            return []
        boundary = np.floor(wm / self.window_s) * self.window_s
        if boundary <= self.sealed_until_s:
            return []
        return self._emit(float(boundary))

    def flush(self) -> List[TelemetryChunk]:
        """Seal every remaining window (end of stream)."""
        if self._n_resident == 0:
            self.sealed_until_s = float("inf")
            return []
        end = max(
            float(p["time"].max()) for p in self._pending
        ) + self.window_s
        out = self._emit(end)
        self.sealed_until_s = float("inf")
        return out

    # -- sealing ------------------------------------------------------------------

    def _consolidate(self) -> Dict[str, np.ndarray]:
        """All pending chunks as one contiguous column dict (arrival order)."""
        if not self._pending:
            return _empty_like_columns()
        if len(self._pending) == 1:
            return self._pending[0]
        cols = {
            key: np.concatenate([p[key] for p in self._pending])
            for key in self._pending[0]
        }
        self._pending = [cols]
        return cols

    def _emit(self, until_s: float) -> List[TelemetryChunk]:
        """Release all windows below ``until_s`` in canonical form."""
        c = self._consolidate()
        take = c["time"] < until_s
        self.sealed_until_s = until_s
        if not take.any():
            return []
        if take.all():
            time, node, gpu, cpu, seq = (
                c["time"], c["node"], c["gpu"], c["cpu"], c["seq"],
            )
            self._pending = []
            self._n_resident = 0
        else:
            time = c["time"][take]
            node = c["node"][take]
            gpu = c["gpu"][take]
            cpu = c["cpu"][take]
            seq = c["seq"][take]
            rest = ~take
            self._pending = [{k: v[rest] for k, v in c.items()}]
            self._n_resident = int(rest.sum())

        # Canonical order: (time, node), first arrival first among ties.
        order = np.lexsort((seq, node, time))
        time, node, gpu, cpu = (
            time[order], node[order], gpu[order], cpu[order],
        )

        # Dedup exact (time, node) keys: the first arrival wins.
        if len(time) > 1:
            dup = np.zeros(len(time), dtype=bool)
            dup[1:] = (time[1:] == time[:-1]) & (node[1:] == node[:-1])
            n_dup = int(dup.sum())
            if n_dup:
                self.duplicates += n_dup
                keep = ~dup
                time, node, gpu, cpu = (
                    time[keep], node[keep], gpu[keep], cpu[keep],
                )

        if self.aggregate:
            time, node, gpu, cpu = self._aggregate_to_grid(
                time, node, gpu, cpu
            )

        # Split into event-time windows: one searchsorted over the
        # precomputed window boundaries (the rows are already in
        # canonical time order), instead of a floor-divide over every
        # sample.  Boundary semantics match the old per-row floor rule:
        # a sample at exactly ``k * window_s`` opens window ``k``.
        w_first = int(np.floor(time[0] / self.window_s))
        w_last = int(np.floor(time[-1] / self.window_s))
        if w_last > w_first:
            bounds = np.arange(w_first + 1, w_last + 1) * self.window_s
            cuts = np.searchsorted(time, bounds, side="left")
        else:
            cuts = np.empty(0, dtype=np.int64)
        out: List[TelemetryChunk] = []
        for lo, hi in zip(
            np.concatenate([[0], cuts]),
            np.concatenate([cuts, [len(time)]]),
        ):
            lo, hi = int(lo), int(hi)
            if hi == lo:
                # A whole window with no samples (fleet gap): no chunk.
                continue
            out.append(
                TelemetryChunk(
                    time_s=time[lo:hi],
                    node_id=node[lo:hi],
                    gpu_power_w=gpu[lo:hi],
                    cpu_power_w=cpu[lo:hi],
                )
            )
            self.windows_emitted += 1
            self.samples_out += hi - lo
        return out

    def _aggregate_to_grid(self, time, node, gpu, cpu):
        """Mean-aggregate raw-cadence rows onto the analysis grid.

        Same floor-window rule as the 2 s -> 15 s pre-processing: the
        output tick ``k`` averages rows with ``time in [k*dt, (k+1)*dt)``
        per node.  Input is canonically sorted; cell members stay in
        time order, so the bincount means are order-stable.
        """
        tick = np.floor(time / self.interval_s).astype(np.int64)
        # Regroup by (tick, node): rows of one cell are contiguous.
        order = np.lexsort((time, node, tick))
        tick, node, gpu, cpu = (
            tick[order], node[order], gpu[order], cpu[order],
        )
        new = np.ones(len(tick), dtype=bool)
        new[1:] = (tick[1:] != tick[:-1]) | (node[1:] != node[:-1])
        gid = np.cumsum(new) - 1
        n_cells = int(gid[-1]) + 1 if len(gid) else 0
        counts = np.bincount(gid, minlength=n_cells).astype(np.float64)
        gpu_out = np.empty(
            (n_cells, constants.GPUS_PER_NODE), dtype=np.float64
        )
        for g in range(constants.GPUS_PER_NODE):
            gpu_out[:, g] = np.bincount(
                gid, weights=gpu[:, g].astype(np.float64),
                minlength=n_cells,
            )
        gpu_out /= counts[:, None]
        cpu_out = (
            np.bincount(
                gid, weights=cpu.astype(np.float64), minlength=n_cells
            )
            / counts
        )
        first = np.flatnonzero(new)
        out_time = tick[first] * self.interval_s
        out_node = node[first]
        # Back to canonical (time, node) order.
        order = np.lexsort((out_node, out_time))
        return (
            out_time[order],
            out_node[order],
            gpu_out[order].astype(np.float32),
            cpu_out[order].astype(np.float32),
        )

    # -- checkpoint support --------------------------------------------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar form of the buffer state for npz persistence."""
        cols = self._consolidate()
        return {
            "buf_time": np.asarray(cols["time"], dtype=np.float64),
            "buf_node": np.asarray(cols["node"], dtype=np.int32),
            "buf_gpu": np.asarray(cols["gpu"], dtype=np.float32),
            "buf_cpu": np.asarray(cols["cpu"], dtype=np.float32),
            "buf_seq": np.asarray(cols["seq"], dtype=np.int64),
            "buf_config": np.array(
                [
                    self.interval_s,
                    self.window_s,
                    self.lateness_s,
                    1.0 if self.aggregate else 0.0,
                ]
            ),
            "buf_clock": np.array(
                [
                    self.max_event_time_s,
                    self.sealed_until_s,
                    float(self._next_seq),
                ]
            ),
            "buf_counters": np.array(
                [
                    self.samples_in,
                    self.duplicates,
                    self.late_dropped,
                    self.windows_emitted,
                    self.samples_out,
                    self.peak_resident,
                ],
                dtype=np.int64,
            ),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_arrays`."""
        interval, window, lateness, aggregate = (
            float(x) for x in arrays["buf_config"]
        )
        self.interval_s = interval
        self.window_s = window
        self.lateness_s = lateness
        self.aggregate = bool(aggregate)
        cols = {
            "time": np.array(arrays["buf_time"], dtype=np.float64),
            "node": np.array(arrays["buf_node"], dtype=np.int32),
            "gpu": np.array(arrays["buf_gpu"], dtype=np.float32),
            "cpu": np.array(arrays["buf_cpu"], dtype=np.float32),
            "seq": np.array(arrays["buf_seq"], dtype=np.int64),
        }
        self._pending = [cols] if len(cols["time"]) else []
        self._n_resident = int(len(cols["time"]))
        clock = arrays["buf_clock"]
        self.max_event_time_s = float(clock[0])
        self.sealed_until_s = float(clock[1])
        self._next_seq = int(clock[2])
        counters = arrays["buf_counters"]
        (
            self.samples_in,
            self.duplicates,
            self.late_dropped,
            self.windows_emitted,
            self.samples_out,
            self.peak_resident,
        ) = (int(x) for x in counters)
