"""The streaming engine: live campaign analytics at bounded memory.

``StreamEngine`` ties the subsystem together: arrival chunks from any
source flow through the event-time :class:`~repro.stream.buffer.ReorderBuffer`,
and every sealed canonical window is folded into a
:class:`~repro.core.join.CampaignAccumulator` — the same vectorized fold
the batch pipeline uses, which is what makes the drained stream
bitwise-identical to :func:`repro.core.join_campaign` over the
canonical windows (see ``docs/streaming.md`` for the exact contract).

At any point, :meth:`StreamEngine.snapshot` reads out the live Table IV
modal decomposition, the Table V/VI savings projections, a fleet-wide
cap recommendation, and the ingest statistics — all from O(bins) state,
without touching the samples again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants, units
from ..core import report
from ..core.characterization import CapFactors, measured_factors
from ..core.heatmap import table6_selection
from ..core.join import CampaignAccumulator, CampaignCube
from ..core.modes import ModeTable, decompose_modes
from ..core.projection import ProjectionTable, project_savings
from ..errors import ProjectionError
from ..obs import runtime as _obs
from ..policy.live import FleetRecommendation, recommend_fleet_cap
from ..scheduler.log import SchedulerLog
from ..telemetry.schema import TelemetryChunk
from .buffer import DEFAULT_WINDOW_S, ReorderBuffer


def render_block(title: str, rows: Sequence[Tuple[str, str]]) -> str:
    """Aligned ``title:`` + indented label/value lines.

    The one formatting helper behind :meth:`IngestStats.render` and
    :meth:`StreamSnapshot.render` (and the ``--watch`` dashboard):
    labels left-justified to the widest label, values right-justified to
    the widest value, two-space indent.
    """
    label_w = max(len(label) for label, _ in rows)
    value_w = max(len(value) for _, value in rows)
    lines = [title]
    lines.extend(
        f"  {label:<{label_w}} {value:>{value_w + 3}}"
        for label, value in rows
    )
    return "\n".join(lines)


def _titled(title: str, body: str) -> str:
    """A section: its heading line directly above its body."""
    return f"{title}\n{body}"


@dataclass(frozen=True)
class IngestStats:
    """Operational counters of one engine (point-in-time)."""

    chunks_in: int
    samples_in: int
    duplicates: int
    late_dropped: int
    windows_folded: int
    samples_folded: int
    resident_samples: int
    peak_resident_samples: int
    max_event_time_s: float
    watermark_s: float
    sealed_until_s: float
    watermark_lag_s: float

    def render(self) -> str:
        lag = self.watermark_lag_s
        return render_block("ingest stats:", [
            ("chunks in", str(self.chunks_in)),
            ("samples in", str(self.samples_in)),
            ("duplicates dropped", str(self.duplicates)),
            ("late dropped", str(self.late_dropped)),
            ("windows folded", str(self.windows_folded)),
            ("samples folded", str(self.samples_folded)),
            ("resident samples", str(self.resident_samples)),
            ("peak resident", str(self.peak_resident_samples)),
            (
                "watermark lag",
                f"{lag:.0f} s ({units.fmt_duration(lag)})",
            ),
        ])


@dataclass(frozen=True)
class StreamSnapshot:
    """Live analytics as of the current watermark."""

    stats: IngestStats
    cube: CampaignCube
    table4: Optional[ModeTable]
    table5: Optional[ProjectionTable]
    table6: Optional[ProjectionTable]
    table6_domains: List[str]
    recommendation: Optional[FleetRecommendation]

    def render(self) -> str:
        """Plain-text report of the live Tables IV/V/VI + ingest state."""
        parts = []
        if self.table4 is not None:
            parts.append(_titled(
                "live Table IV (modal decomposition):",
                report.render_table4(self.table4),
            ))
        if self.table5 is not None:
            parts.append("")
            parts.append(_titled(
                "live Table V (savings projection):",
                report.render_table5(self.table5),
            ))
        if self.table6 is not None:
            parts.append("")
            parts.append(_titled(
                "live Table VI (selected domains "
                f"{', '.join(self.table6_domains)}; classes A-C):",
                report.render_table5(self.table6),
            ))
        if self.recommendation is not None:
            rec = self.recommendation
            if rec.capped:
                parts.append(
                    f"\nfleet advice: cap at {rec.cap:.0f} "
                    f"({rec.knob}) -> {rec.expected_saving_mwh:.0f} MWh "
                    f"({rec.savings_pct:.2f} %) at "
                    f"{rec.runtime_increase_pct:.2f} % runtime increase"
                )
            else:
                parts.append(
                    "\nfleet advice: leave uncapped (no projected "
                    "savings within the slowdown budget)"
                )
        if not parts:
            parts.append("no sealed windows yet — nothing to report")
        parts.append("")
        parts.append(self.stats.render())
        return "\n".join(parts)


class StreamEngine:
    """Incremental telemetry ingestion with live, queryable analytics."""

    def __init__(
        self,
        log: SchedulerLog,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
        window_s: float = DEFAULT_WINDOW_S,
        lateness_s: float = 0.0,
        aggregate: bool = False,
    ) -> None:
        self.log = log
        self.buffer = ReorderBuffer(
            interval_s=interval_s,
            window_s=window_s,
            lateness_s=lateness_s,
            aggregate=aggregate,
        )
        self.accumulator = CampaignAccumulator(log, interval_s=interval_s)
        self.chunks_in = 0
        #: Optional :class:`repro.obs.health.HealthMonitor`, evaluated
        #: after every ingest call that folded windows (and at drain).
        self.health = None
        #: Optional :class:`repro.obs.forensics.Forensics` facade,
        #: attached via :meth:`attach_recorder`.
        self.forensics = None
        #: Optional :class:`repro.obs.history.History` facade,
        #: attached via :meth:`attach_history`.
        self.history = None
        #: Optional :class:`repro.obs.log.EventLog`,
        #: attached via :meth:`attach_log`.
        self.eventlog = None
        self._window_observers: List = []
        self._metric_sources: List = []

    def add_window_observer(self, fn) -> "StreamEngine":
        """Call ``fn(window)`` for every sealed window, in fold order.

        Observers run directly after the accumulator folds the window —
        during :meth:`ingest` and :meth:`drain` alike — so a side
        consumer (the control plane's per-job accumulator, the
        closed-loop cap applier) sees exactly the canonical window
        sequence the cube is built from, in the same deterministic
        order.  Observers must not mutate the window.
        """
        self._window_observers.append(fn)
        return self

    def add_metric_source(self, fn) -> "StreamEngine":
        """Merge ``fn() -> {name: value}`` into :meth:`metric_values`.

        Extra gauges ride the same export path as the built-in
        ``stream_*`` mirrors: into the metrics registry, the health
        monitor's rule evaluation, and checkpoint-free snapshots.
        Non-finite values are dropped like the built-ins.
        """
        self._metric_sources.append(fn)
        return self

    def attach_recorder(self, forensics) -> "StreamEngine":
        """Attach a flight-recorder facade (:mod:`repro.obs.forensics`).

        The facade rides the window-observer hook — every sealed window
        is compacted into its bounded ring and run through the anomaly
        detectors, in canonical fold order — and its gauges
        (``forensics_*``) ride the metric-source hook.  Like the health
        monitor, the recorder only *reads* windows, so attaching one
        leaves every analytic output bitwise unchanged (asserted in
        ``tests/obs/test_forensics.py``).
        """
        forensics.bind_engine(self)
        self.forensics = forensics
        self.add_window_observer(forensics.observe_window)
        self.add_metric_source(forensics.metric_values)
        return self

    def attach_history(self, history) -> "StreamEngine":
        """Attach a long-horizon history (:mod:`repro.obs.history`).

        The facade rides the window-observer hook — every sealed window
        is compacted into one columnar store row (rolling up as buckets
        complete) and the SLO burn rates are re-evaluated at the
        window's end — and its gauges (``history_*``, ``slo_*``) ride
        the metric-source hook.  Like the recorder, the history only
        *reads* windows, so attaching one leaves every analytic output
        bitwise unchanged (asserted in ``tests/obs/test_history.py``).
        """
        history.bind_engine(self)
        self.history = history
        self.add_window_observer(history.observe_window)
        self.add_metric_source(history.metric_values)
        return self

    def attach_log(self, eventlog) -> "StreamEngine":
        """Attach a structured event log (:mod:`repro.obs.log`).

        The log rides the window-observer hook — one ``stream.window_seal``
        record per sealed window (stamped with the window index and the
        published cap version when a decision feed is wired), plus
        rate-limited ``stream.late_drop``/``stream.duplicates`` spike
        records — and its ``log_*`` gauges ride the metric-source hook.
        Like every other facade, the log only *reads* engine state, so
        attaching one leaves the cube and every served byte bitwise
        unchanged (asserted in ``tests/obs/test_log.py``).
        """
        eventlog.bind_engine(self)
        self.eventlog = eventlog
        self.add_window_observer(eventlog.observe_window)
        self.add_metric_source(eventlog.metric_values)
        return self

    def attach_health(self, monitor) -> "StreamEngine":
        """Attach a health monitor; evaluated per drained window.

        The monitor only *reads* engine state (counters and a copied
        cube), so attaching one leaves every analytic output bitwise
        unchanged (asserted in ``tests/obs/``).
        """
        self.health = monitor
        return self

    # -- ingestion ----------------------------------------------------------------

    def ingest(self, chunk: TelemetryChunk) -> int:
        """Absorb one arrival chunk; fold any windows it sealed.

        Returns the number of windows folded by this call.  With
        observability on, the call is traced (``stream.ingest``, one
        ``stream.fold_window`` child per sealed window — the unit the
        perf budgets meter) and the live ingest counters are mirrored
        into the metrics registry.
        """
        with _obs.span("stream.ingest"):
            self.chunks_in += 1
            windows = self.buffer.push(chunk)
            for window in windows:
                with _obs.span("stream.fold_window"):
                    self.accumulator.update(window)
                for observer in self._window_observers:
                    observer(window)
        st = _obs.state()
        if st is not None:
            self.export_metrics(st.registry)
        if self.health is not None and windows:
            self.health.observe_engine(self)
        return len(windows)

    def drain(self) -> int:
        """Seal and fold everything still buffered (end of stream)."""
        with _obs.span("stream.drain"):
            windows = self.buffer.flush()
            for window in windows:
                with _obs.span("stream.fold_window"):
                    self.accumulator.update(window)
                for observer in self._window_observers:
                    observer(window)
        if self.forensics is not None:
            self.forensics.finalize()
        if self.history is not None:
            self.history.finalize()
        if self.eventlog is not None:
            self.eventlog.finalize()
        st = _obs.state()
        if st is not None:
            self.export_metrics(st.registry)
        if self.health is not None:
            self.health.observe_engine(self)
        return len(windows)

    def run(
        self,
        source: Iterable[TelemetryChunk],
        *,
        max_chunks: Optional[int] = None,
        drain: bool = True,
    ) -> "StreamEngine":
        """Consume a source to completion (or for ``max_chunks``)."""
        for i, chunk in enumerate(source):
            if max_chunks is not None and i >= max_chunks:
                break
            self.ingest(chunk)
        if drain:
            self.drain()
        return self

    # -- queries ------------------------------------------------------------------

    @property
    def stats(self) -> IngestStats:
        buf = self.buffer
        return IngestStats(
            chunks_in=self.chunks_in,
            samples_in=buf.samples_in,
            duplicates=buf.duplicates,
            late_dropped=buf.late_dropped,
            windows_folded=buf.windows_emitted,
            samples_folded=buf.samples_out,
            resident_samples=buf.resident_samples,
            peak_resident_samples=buf.peak_resident,
            max_event_time_s=buf.max_event_time_s,
            watermark_s=buf.watermark_s,
            sealed_until_s=buf.sealed_until_s,
            watermark_lag_s=buf.watermark_lag_s,
        )

    def cube(self, *, copy: bool = True) -> CampaignCube:
        """The campaign cube of all sealed windows so far."""
        return self.accumulator.cube(copy=copy)

    def metric_values(self) -> Dict[str, float]:
        """Finite ``stream_*`` gauge values of the current ingest state.

        The shared source for :meth:`export_metrics` and the health
        layer's rule evaluation: cumulative totals plus the point-in-
        time lag/residency gauges, with non-finite sentinels (the
        pre-first-sample watermark, the post-drain sealed frontier)
        dropped so exports stay strict-JSON clean.
        """
        stats = self.stats
        values = {
            "stream_chunks_in": stats.chunks_in,
            "stream_samples_in": stats.samples_in,
            "stream_duplicates_dropped": stats.duplicates,
            "stream_late_dropped": stats.late_dropped,
            "stream_windows_folded": stats.windows_folded,
            "stream_samples_folded": stats.samples_folded,
            "stream_resident_samples": stats.resident_samples,
            "stream_peak_resident_samples": stats.peak_resident_samples,
            "stream_watermark_lag_seconds": stats.watermark_lag_s,
            "stream_watermark_seconds": stats.watermark_s,
            "stream_sealed_until_seconds": stats.sealed_until_s,
            "stream_max_event_time_seconds": stats.max_event_time_s,
        }
        for source in self._metric_sources:
            values.update(source())
        return {
            name: float(value)
            for name, value in values.items()
            if np.isfinite(value)
        }

    def export_metrics(self, registry) -> None:
        """Mirror the ingest counters into a metrics registry.

        Counters are monotone mirrors of the buffer's cumulative totals
        (exported as gauges so re-export stays idempotent); the lag and
        residency gauges are point-in-time.
        """
        for name, value in self.metric_values().items():
            registry.gauge(name).set(value)

    def snapshot(
        self,
        *,
        factors: Optional[CapFactors] = None,
        campaign_energy_mwh: Optional[float] = None,
        max_slowdown_pct: float = 5.0,
    ) -> StreamSnapshot:
        """Live Tables IV/V/VI + fleet advice + ingest statistics.

        Derived entirely from the fold's O(bins) state; safe to call at
        any cadence.  Tables are ``None`` until the first window seals.
        """
        with _obs.span("stream.snapshot"):
            return self._snapshot(
                factors=factors,
                campaign_energy_mwh=campaign_energy_mwh,
                max_slowdown_pct=max_slowdown_pct,
            )

    def _snapshot(
        self,
        *,
        factors: Optional[CapFactors],
        campaign_energy_mwh: Optional[float],
        max_slowdown_pct: float,
    ) -> StreamSnapshot:
        return compute_snapshot(
            self.cube(copy=True),
            self.stats,
            factors=factors,
            campaign_energy_mwh=campaign_energy_mwh,
            max_slowdown_pct=max_slowdown_pct,
        )


def compute_snapshot(
    cube: CampaignCube,
    stats: IngestStats,
    *,
    factors: Optional[CapFactors] = None,
    campaign_energy_mwh: Optional[float] = None,
    max_slowdown_pct: float = 5.0,
) -> StreamSnapshot:
    """Derive a :class:`StreamSnapshot` from a cube + ingest stats.

    The shared analytics tail of :meth:`StreamEngine.snapshot` and the
    sharded campaign driver (:mod:`repro.stream.shard`): live Table
    IV/V/VI plus fleet cap advice, all from O(bins) cube state.
    """
    if cube.total_gpu_hours == 0 or cube.total_energy_j <= 0:
        return StreamSnapshot(
            stats=stats, cube=cube, table4=None, table5=None,
            table6=None, table6_domains=[], recommendation=None,
        )
    factors = (
        factors if factors is not None else measured_factors("frequency")
    )
    table4 = decompose_modes(cube)
    table5 = project_savings(
        cube, factors, campaign_energy_mwh=campaign_energy_mwh
    )
    table6 = None
    table6_domains: List[str] = []
    try:
        selected, table6_domains = table6_selection(cube, factors)
        table6 = project_savings(
            selected,
            factors,
            campaign_energy_mwh=campaign_energy_mwh,
            reference_cube=cube,
        )
    except ProjectionError:
        # A young stream may not show positive savings anywhere yet.
        table6_domains = []
    recommendation = recommend_fleet_cap(
        cube,
        factors,
        max_slowdown_pct=max_slowdown_pct,
        projection=table5,
    )
    return StreamSnapshot(
        stats=stats,
        cube=cube,
        table4=table4,
        table5=table5,
        table6=table6,
        table6_domains=table6_domains,
        recommendation=recommendation,
    )
