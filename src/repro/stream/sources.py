"""Stream sources: where arrival chunks come from.

A *source* is any iterable of :class:`~repro.telemetry.schema.TelemetryChunk`;
the engine makes no further assumptions.  This module provides the
pluggable ones:

* :func:`replay_store` — event-time-ordered replay of a materialized
  store (or an npz file loaded into one);
* :func:`replay_generator` — time-ordered replay straight from a
  :class:`~repro.telemetry.generator.FleetTelemetryGenerator` without
  materializing the fleet (node blocks are re-rendered per time slab:
  a recompute-for-memory trade);
* :func:`file_source` — npz or CSV telemetry files;
* :func:`simulated_fleet` — an in-process simulated fleet (scheduler +
  generator), the one-call entry used by ``repro stream``;
* :func:`perturb` — wraps any source and re-delivers its samples
  shuffled within a lateness horizon, with injected duplicates: the
  adversarial arrival pattern the reorder buffer exists for;
* :func:`canonical_windows` — the *reference* event-time windowing used
  to state the streaming-vs-batch equivalence contract (implemented
  independently of the reorder buffer on purpose).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

import numpy as np

from .. import constants, units
from ..errors import TelemetryError
from ..rng import derive_seed
from ..scheduler import SlurmSimulator, default_mix
from ..scheduler.log import SchedulerLog
from ..telemetry import FleetTelemetryGenerator, TelemetryStore
from ..telemetry.io_csv import read_telemetry_csv_chunks
from ..telemetry.schema import TelemetryChunk

#: Default arrival-chunk span in aggregated ticks.
DEFAULT_CHUNK_TICKS = 20

TelemetryLike = Union[TelemetryStore, Iterable[TelemetryChunk]]


def _as_rows(telemetry: TelemetryLike) -> TelemetryChunk:
    """Materialize any telemetry input as one chunk."""
    if isinstance(telemetry, TelemetryStore):
        return telemetry.chunk
    chunks = list(telemetry)
    if not chunks:
        raise TelemetryError("no telemetry chunks")
    return TelemetryChunk.concatenate(chunks)


def _sorted_rows(chunk: TelemetryChunk) -> TelemetryChunk:
    """Rows in canonical (time, node) order, exact duplicates removed."""
    order = np.lexsort((chunk.node_id, chunk.time_s))
    time = chunk.time_s[order]
    node = chunk.node_id[order]
    gpu = chunk.gpu_power_w[order]
    cpu = chunk.cpu_power_w[order]
    if len(time) > 1:
        keep = np.ones(len(time), dtype=bool)
        keep[1:] = (time[1:] != time[:-1]) | (node[1:] != node[:-1])
        time, node, gpu, cpu = time[keep], node[keep], gpu[keep], cpu[keep]
    return TelemetryChunk(
        time_s=time, node_id=node, gpu_power_w=gpu, cpu_power_w=cpu
    )


def _slice_by_time(
    rows: TelemetryChunk, span_s: float
) -> Iterator[TelemetryChunk]:
    """Cut time-sorted rows at multiples of ``span_s``."""
    time = rows.time_s
    if not len(time):
        return
    first = np.floor(time[0] / span_s)
    last = np.floor(time[-1] / span_s)
    for w in np.arange(first, last + 1):
        lo = np.searchsorted(time, w * span_s, side="left")
        hi = np.searchsorted(time, (w + 1) * span_s, side="left")
        if hi > lo:
            yield TelemetryChunk(
                time_s=time[lo:hi],
                node_id=rows.node_id[lo:hi],
                gpu_power_w=rows.gpu_power_w[lo:hi],
                cpu_power_w=rows.cpu_power_w[lo:hi],
            )


def canonical_windows(
    telemetry: TelemetryLike,
    *,
    window_s: float,
) -> Iterator[TelemetryChunk]:
    """The canonical event-time windowing of a telemetry set.

    Sorted by ``(time, node)``, exact-duplicate free, cut at multiples
    of ``window_s`` — exactly the chunk sequence a drained
    :class:`~repro.stream.engine.StreamEngine` folds, whatever order the
    samples arrived in.  Feeding these windows to
    :func:`repro.core.join_campaign` is the batch side of the
    equivalence contract.
    """
    yield from _slice_by_time(_sorted_rows(_as_rows(telemetry)), window_s)


# -- replay sources ----------------------------------------------------------------


def replay_store(
    store: TelemetryStore,
    *,
    chunk_ticks: int = DEFAULT_CHUNK_TICKS,
) -> Iterator[TelemetryChunk]:
    """Replay a materialized store in event-time order."""
    if chunk_ticks <= 0:
        raise TelemetryError("chunk_ticks must be positive")
    span = chunk_ticks * store.interval_s
    yield from _slice_by_time(_sorted_rows(store.chunk), span)


def replay_generator(
    gen: FleetTelemetryGenerator,
    *,
    chunk_ticks: int = DEFAULT_CHUNK_TICKS,
    nodes_per_block: int = 16,
) -> Iterator[TelemetryChunk]:
    """Time-ordered replay from a generator at bounded memory.

    Out-of-band collectors poll the whole fleet each tick, so the
    physical arrival order is time-major.  The generator renders
    node-major, so each time slab re-renders node blocks and keeps only
    the slab's rows: memory stays at one node block plus one slab of
    the fleet, at the cost of ``n_slabs`` re-renders.  Use
    :func:`replay_store` when the campaign fits in memory.
    """
    if chunk_ticks <= 0:
        raise TelemetryError("chunk_ticks must be positive")
    if nodes_per_block <= 0:
        raise TelemetryError("nodes_per_block must be positive")
    n_ticks = gen.n_samples
    n_nodes = gen.log.n_nodes
    for t_lo in range(0, n_ticks, chunk_ticks):
        t_hi = min(t_lo + chunk_ticks, n_ticks)
        parts = []
        for n_lo in range(0, n_nodes, nodes_per_block):
            n_hi = min(n_lo + nodes_per_block, n_nodes)
            for nid in range(n_lo, n_hi):
                node_rows = gen.node_chunk(nid)
                parts.append(
                    TelemetryChunk(
                        time_s=node_rows.time_s[t_lo:t_hi],
                        node_id=node_rows.node_id[t_lo:t_hi],
                        gpu_power_w=node_rows.gpu_power_w[t_lo:t_hi],
                        cpu_power_w=node_rows.cpu_power_w[t_lo:t_hi],
                    )
                )
        slab = TelemetryChunk.concatenate(parts)
        order = np.lexsort((slab.node_id, slab.time_s))
        yield TelemetryChunk(
            time_s=slab.time_s[order],
            node_id=slab.node_id[order],
            gpu_power_w=slab.gpu_power_w[order],
            cpu_power_w=slab.cpu_power_w[order],
        )


def file_source(
    path,
    *,
    chunk_ticks: int = DEFAULT_CHUNK_TICKS,
    rows_per_chunk: int = 100_000,
) -> Iterator[TelemetryChunk]:
    """Stream telemetry from an npz store or a CSV file.

    npz files replay in event-time order; CSV rows stream in file order
    (any order is fine — the engine's reorder buffer canonicalizes).
    """
    p = Path(path)
    if p.suffix == ".npz":
        yield from replay_store(
            TelemetryStore.load(p), chunk_ticks=chunk_ticks
        )
    else:
        yield from read_telemetry_csv_chunks(
            p, rows_per_chunk=rows_per_chunk
        )


def simulated_fleet(
    *,
    fleet_nodes: int = 32,
    days: float = 1.0,
    seed: int = 0,
    chunk_ticks: int = DEFAULT_CHUNK_TICKS,
) -> Tuple[SchedulerLog, Iterator[TelemetryChunk]]:
    """An in-process simulated fleet: (scheduler log, live source).

    Same construction as the batch campaign
    (:func:`repro.experiments._campaign.build_campaign`): the scheduler
    log seeds both the telemetry and the join, so streaming results are
    directly comparable to the batch experiments at equal config.
    """
    mix = default_mix(fleet_nodes=fleet_nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=seed)
    gen = FleetTelemetryGenerator(log, mix, seed=seed + 1000)
    return log, replay_generator(gen, chunk_ticks=chunk_ticks)


# -- adversarial delivery ----------------------------------------------------------


def perturb(
    source: TelemetryLike,
    *,
    seed: int = 0,
    lateness_s: float = 4 * constants.TELEMETRY_INTERVAL_S,
    dup_fraction: float = 0.0,
    drop_fraction: float = 0.0,
    rows_per_chunk: int = 4096,
) -> Iterator[TelemetryChunk]:
    """Re-deliver a source shuffled, duplicated, and gapped.

    Every sample (and every injected duplicate) gets a delivery time
    ``event_time + U[0, lateness_s)`` and the stream is re-emitted in
    delivery order: samples arrive out of order, but never later than
    ``lateness_s`` behind the newest event already delivered — an
    engine configured with ``lateness_s`` this large drops nothing.
    ``dup_fraction`` injects duplicate records; ``drop_fraction``
    deletes samples outright (sensor gaps).  Deterministic per seed.
    Materializes the source (a test/demo harness, not a transport).
    """
    if not 0 <= drop_fraction < 1:
        raise TelemetryError("drop_fraction must be in [0, 1)")
    if dup_fraction < 0:
        raise TelemetryError("dup_fraction must be >= 0")
    if rows_per_chunk <= 0:
        raise TelemetryError("rows_per_chunk must be positive")
    rows = _as_rows(source)
    rng = np.random.default_rng(derive_seed(seed, "stream-perturb"))
    n = len(rows)
    idx = np.arange(n)
    if drop_fraction:
        keep = rng.random(n) >= drop_fraction
        idx = idx[keep]
    if dup_fraction:
        n_dup = int(round(dup_fraction * len(idx)))
        dups = rng.choice(idx, size=n_dup, replace=True)
        idx = np.concatenate([idx, dups])
    delivery = rows.time_s[idx]
    if lateness_s > 0:
        delivery = delivery + rng.uniform(0.0, lateness_s, size=len(idx))
    order = np.argsort(delivery, kind="stable")
    idx = idx[order]
    for lo in range(0, len(idx), rows_per_chunk):
        sel = idx[lo : lo + rows_per_chunk]
        yield TelemetryChunk(
            time_s=rows.time_s[sel],
            node_id=rows.node_id[sel],
            gpu_power_w=rows.gpu_power_w[sel],
            cpu_power_w=rows.cpu_power_w[sel],
        )
