"""Incremental telemetry ingestion and live projection.

The paper's pipeline is inherently a stream — three months of
out-of-band samples at 15 s cadence joined against SLURM logs — and an
operational power manager needs the answers *while* the samples arrive.
This subsystem turns the batch reproduction into that serving shape:

* :mod:`repro.stream.sources`    — pluggable arrival sources: replay
  from the fleet generator, npz/CSV files, an in-process simulated
  fleet, plus an adversarial delivery wrapper (shuffle/duplicate/drop);
* :mod:`repro.stream.buffer`     — the event-time core: watermarks, a
  dedup/reorder buffer, late-sample accounting, optional raw-cadence
  (2 s -> 15 s) aggregation;
* :mod:`repro.stream.engine`     — ``StreamEngine``: folds sealed
  windows through the batch pipeline's own
  :class:`~repro.core.join.CampaignAccumulator` and serves live
  Table IV/V/VI snapshots plus fleet cap advice from O(bins) state;
* :mod:`repro.stream.checkpoint` — npz checkpoint/resume mid-stream;
* :mod:`repro.stream.shard`      — the sharded campaign engine: the
  whole generate/reorder/fold pipeline partitioned by node range
  across worker processes, merged into a campaign cube bitwise
  identical to the single-process fold, with per-shard checkpoints.

Equivalence contract: once the stream drains, the engine's cube is
bitwise-identical to :func:`repro.core.join_campaign` over the
canonical event-time windows of the same samples — whatever order they
arrived in, duplicates and all (``docs/streaming.md``).

CLI: ``python -m repro stream`` runs a source to completion (or for
``--max-chunks``) and prints the live tables and ingest statistics.
"""

from .buffer import DEFAULT_WINDOW_S, ReorderBuffer
from .checkpoint import load_checkpoint, save_checkpoint
from .engine import IngestStats, StreamEngine, StreamSnapshot
from .shard import (
    ShardConfig,
    ShardedCampaign,
    plan_shards,
    plan_units,
    run_sharded_campaign,
)
from .sources import (
    canonical_windows,
    file_source,
    perturb,
    replay_generator,
    replay_store,
    simulated_fleet,
)

__all__ = [
    "DEFAULT_WINDOW_S",
    "ReorderBuffer",
    "load_checkpoint",
    "save_checkpoint",
    "IngestStats",
    "StreamEngine",
    "StreamSnapshot",
    "ShardConfig",
    "ShardedCampaign",
    "plan_shards",
    "plan_units",
    "run_sharded_campaign",
    "canonical_windows",
    "file_source",
    "perturb",
    "replay_generator",
    "replay_store",
    "simulated_fleet",
]
