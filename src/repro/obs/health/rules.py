"""Declarative alert rules over metric snapshots.

The rule engine is the "noticing" half of the health layer: it turns the
passive gauges of :class:`~repro.obs.metrics.MetricsRegistry` (and the
:class:`~repro.stream.engine.StreamEngine` ingest mirrors) into operator
state.  Three rule kinds cover the paper's operational failure modes:

* ``threshold`` — a metric crossed a bound (watermark lag, drift TV
  distance, resident-sample ceiling);
* ``rate``      — a cumulative counter is growing too fast (late-drop
  spikes, duplicate storms), measured between consecutive evaluations;
* ``absence``   — a metric the pipeline must report stopped appearing
  (telemetry coverage loss).

Each rule runs a Prometheus-style state machine — inactive → pending
(while the condition holds but ``for_s`` has not elapsed) → firing →
resolved — driven entirely by the *event time* passed to
:meth:`AlertEngine.evaluate`, so evaluation is deterministic and tests
never sleep.  Transitions land in a bounded history ring served by the
``/alerts`` endpoint (:mod:`repro.obs.health.server`).
"""

from __future__ import annotations

import json
import operator
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ...errors import HealthError

#: States of one rule, in increasing severity (gauge encoding).
INACTIVE, PENDING, FIRING = "inactive", "pending", "firing"
_STATE_CODE = {INACTIVE: 0, PENDING: 1, FIRING: 2}

_KINDS = ("threshold", "rate", "absence")
_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

#: The ruleset shipped with the repo (see docs/observability.md for the
#: rationale behind each threshold).
DEFAULT_RULES_PATH = Path(__file__).with_name("default_rules.json")


@dataclass(frozen=True)
class RuleSpec:
    """One declarative alert rule (immutable; state lives in the engine)."""

    name: str
    metric: str
    kind: str                    # threshold | rate | absence
    op: str = ">"                # unused for absence rules
    value: float = 0.0           # unused for absence rules
    for_s: float = 0.0           # condition must hold this long to fire
    severity: str = "warning"
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise HealthError("alert rule needs a name")
        if not self.metric:
            raise HealthError(f"rule {self.name!r} needs a metric")
        if self.kind not in _KINDS:
            raise HealthError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.kind != "absence" and self.op not in _OPS:
            raise HealthError(
                f"rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {', '.join(_OPS)})"
            )
        if self.for_s < 0:
            raise HealthError(f"rule {self.name!r}: for_s must be >= 0")

    @classmethod
    def from_dict(cls, spec: Mapping) -> "RuleSpec":
        unknown = set(spec) - {
            "name", "metric", "kind", "op", "value", "for_s",
            "severity", "summary",
        }
        if unknown:
            raise HealthError(
                f"rule {spec.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}"
            )
        try:
            return cls(
                name=str(spec["name"]),
                metric=str(spec["metric"]),
                kind=str(spec.get("kind", "threshold")),
                op=str(spec.get("op", ">")),
                value=float(spec.get("value", 0.0)),
                for_s=float(spec.get("for_s", 0.0)),
                severity=str(spec.get("severity", "warning")),
                summary=str(spec.get("summary", "")),
            )
        except KeyError as exc:
            raise HealthError(f"alert rule missing key {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise HealthError(
                f"rule {spec.get('name', '?')!r}: {exc}"
            ) from exc


def parse_rules(doc: Mapping) -> List[RuleSpec]:
    """Parse a rules document: ``{"rules": [{...}, ...]}``."""
    if not isinstance(doc, Mapping) or "rules" not in doc:
        raise HealthError("rules document needs a top-level 'rules' list")
    rules = [RuleSpec.from_dict(spec) for spec in doc["rules"]]
    names = [r.name for r in rules]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise HealthError(f"duplicate rule names: {sorted(dupes)}")
    return rules


def load_rules(path) -> List[RuleSpec]:
    """Load a rules file — JSON always, TOML where tomllib exists (3.11+)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise HealthError(f"cannot read rules file {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py3.10
            raise HealthError(
                "TOML rules need python >= 3.11 (tomllib); use JSON"
            ) from exc
        try:
            return parse_rules(tomllib.loads(raw.decode()))
        except tomllib.TOMLDecodeError as exc:
            raise HealthError(f"bad TOML in {path}: {exc}") from exc
    try:
        return parse_rules(json.loads(raw))
    except json.JSONDecodeError as exc:
        raise HealthError(f"bad JSON in {path}: {exc}") from exc


def default_rules() -> List[RuleSpec]:
    """The shipped default ruleset (``default_rules.json``)."""
    return load_rules(DEFAULT_RULES_PATH)


class _RuleState:
    """Mutable evaluation state of one rule."""

    __slots__ = (
        "state", "pending_since_s", "fired_at_s", "last_value",
        "prev_t", "prev_v", "last_cond",
    )

    def __init__(self) -> None:
        self.state = INACTIVE
        self.pending_since_s: Optional[float] = None
        self.fired_at_s: Optional[float] = None
        self.last_value: Optional[float] = None
        self.prev_t: Optional[float] = None   # rate rules: last sample time
        self.prev_v: Optional[float] = None   # rate rules: last sample value
        self.last_cond = False


class AlertEngine:
    """Evaluate a ruleset against metric snapshots at given event times.

    ``evaluate`` is pure with respect to wall clock: pass the flat value
    snapshot (:meth:`MetricsRegistry.counter_values` shape, unlabelled
    names) and a non-decreasing event-time ``now_s``; it returns the
    transition events this evaluation produced and records them in the
    bounded :attr:`history` ring.
    """

    def __init__(self, rules: Iterable[RuleSpec],
                 *, history_size: int = 256) -> None:
        self.rules: List[RuleSpec] = list(rules)
        self._states: Dict[str, _RuleState] = {
            r.name: _RuleState() for r in self.rules
        }
        if len(self._states) != len(self.rules):
            raise HealthError("duplicate rule names in engine")
        self.history: deque = deque(maxlen=history_size)
        self.evaluations = 0
        self.transitions = 0
        self.last_eval_s: Optional[float] = None
        #: Transition listeners ``fn(event_dict)``, called for every
        #: emitted transition — how the structured event log records
        #: alert state changes (see :meth:`add_listener`).
        self._listeners: List = []

    def add_listener(self, fn) -> "AlertEngine":
        """Call ``fn(event)`` for every transition event, as emitted.

        Listeners observe the same dicts that land in :attr:`history`,
        in the same deterministic evaluation order; they must not
        mutate the event.
        """
        self._listeners.append(fn)
        return self

    # -- evaluation ---------------------------------------------------------------

    def _condition(self, rule: RuleSpec, st: _RuleState,
                   values: Mapping[str, float], now_s: float):
        """(condition, observed value) for one rule at ``now_s``."""
        if rule.kind == "absence":
            return rule.metric not in values, None
        v = values.get(rule.metric)
        if rule.kind == "threshold":
            if v is None:
                return False, None
            st.last_value = float(v)
            return _OPS[rule.op](v, rule.value), float(v)
        # rate: slope of a cumulative series between evaluations.
        if v is None:
            # No report this round: keep the stored sample, hold state.
            return st.last_cond, st.last_value
        if st.prev_t is None:
            st.prev_t, st.prev_v = now_s, float(v)
            return False, None
        if now_s <= st.prev_t:
            # Event time did not advance; nothing new to measure.
            return st.last_cond, st.last_value
        rate = (float(v) - st.prev_v) / (now_s - st.prev_t)
        st.prev_t, st.prev_v = now_s, float(v)
        st.last_value = rate
        return _OPS[rule.op](rate, rule.value), rate

    def evaluate(self, values: Mapping[str, float],
                 now_s: float) -> List[dict]:
        """Advance every rule's state machine to event time ``now_s``."""
        events: List[dict] = []

        def emit(rule: RuleSpec, transition: str, observed) -> None:
            event = {
                "t_s": float(now_s),
                "rule": rule.name,
                "severity": rule.severity,
                "transition": transition,
                "value": observed,
                "summary": rule.summary,
            }
            events.append(event)
            self.history.append(event)
            self.transitions += 1
            for listener in self._listeners:
                listener(event)

        for rule in self.rules:
            st = self._states[rule.name]
            cond, observed = self._condition(rule, st, values, now_s)
            st.last_cond = cond
            if cond:
                if st.state == INACTIVE:
                    st.pending_since_s = now_s
                    if rule.for_s > 0:
                        st.state = PENDING
                        emit(rule, PENDING, observed)
                if st.state in (PENDING, INACTIVE):
                    if now_s - st.pending_since_s >= rule.for_s:
                        st.state = FIRING
                        st.fired_at_s = now_s
                        emit(rule, FIRING, observed)
            else:
                if st.state == FIRING:
                    emit(rule, "resolved", observed)
                st.state = INACTIVE
                st.pending_since_s = None
                st.fired_at_s = None
        self.evaluations += 1
        self.last_eval_s = float(now_s)
        return events

    # -- views --------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return not any(
            st.state == FIRING for st in self._states.values()
        )

    def rule_states(self) -> List[dict]:
        """JSON-ready per-rule state (the ``/health`` payload body)."""
        out = []
        for rule in self.rules:
            st = self._states[rule.name]
            out.append({
                "name": rule.name,
                "metric": rule.metric,
                "kind": rule.kind,
                "severity": rule.severity,
                "state": st.state,
                "since_s": st.pending_since_s,
                "fired_at_s": st.fired_at_s,
                "value": st.last_value,
                "threshold": None if rule.kind == "absence" else rule.value,
                "op": None if rule.kind == "absence" else rule.op,
                "for_s": rule.for_s,
                "summary": rule.summary,
            })
        return out

    def firing(self) -> List[dict]:
        return [r for r in self.rule_states() if r["state"] == FIRING]

    def to_health_dict(self) -> dict:
        """The ``/health`` document (readiness-probe shaped)."""
        firing = self.firing()
        return {
            "status": "ok" if not firing else "degraded",
            "firing": len(firing),
            "evaluations": self.evaluations,
            "last_eval_s": self.last_eval_s,
            "rules": self.rule_states(),
        }

    def to_alerts_dict(self) -> dict:
        """The ``/alerts`` document: firing set + transition history."""
        return {
            "firing": self.firing(),
            "transitions": self.transitions,
            "history": list(self.history),
        }

    def export(self, registry) -> None:
        """Mirror rule states into a metrics registry (idempotent gauges)."""
        for row in self.rule_states():
            registry.gauge(
                "health_rule_state",
                "alert rule state: 0 inactive, 1 pending, 2 firing",
                rule=row["name"],
            ).set(_STATE_CODE[row["state"]])
        registry.gauge(
            "health_alerts_firing", "number of alert rules currently firing"
        ).set(len(self.firing()))
        registry.gauge(
            "health_rule_transitions", "cumulative rule state transitions"
        ).set(self.transitions)


def render_events(events: Sequence[Mapping], *, title: str = "") -> str:
    """Plain-text alert timeline (experiment output, ``obs alerts``)."""
    lines = [title] if title else []
    if not events:
        lines.append("  (no alert transitions)")
        return "\n".join(lines)
    for ev in events:
        value = ev.get("value")
        shown = "-" if value is None else f"{value:g}"
        lines.append(
            f"  t={ev['t_s']:>9.0f} s  {ev['transition']:<9} "
            f"{ev['rule']:<28} [{ev['severity']}] value={shown}"
        )
    return "\n".join(lines)
