"""Zero-dependency HTTP exporter: ``/metrics``, ``/health``, ``/alerts``.

A ``ThreadingHTTPServer`` on a daemon thread, serving three read-only
views of the live observability state:

* ``/metrics`` — Prometheus text exposition of the wrapped registry
  (scrape target);
* ``/health``  — JSON rule states; answers 200 while no rule fires and
  503 while one does, so it drops straight into a readiness probe;
* ``/alerts``  — the firing set plus the bounded transition-history
  ring (incident timeline).

The server holds no state of its own — every request re-reads the
registry/monitor — and shuts down cleanly: :class:`HealthServer` is a
context manager whose exit joins the serving thread and closes the
listening socket, so tests never leak ports.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ...errors import HealthError
from ..metrics import MetricsRegistry
from .monitor import HealthMonitor


class _Handler(BaseHTTPRequestHandler):
    # The exporter is machine-facing; request logging is noise.
    def log_message(self, fmt, *args):  # noqa: ARG002
        pass

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, doc: dict) -> None:
        self._send(
            status, "application/json",
            json.dumps(doc, indent=2) + "\n",
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: MetricsRegistry = self.server.registry
        monitor: Optional[HealthMonitor] = self.server.monitor
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    200, "text/plain; version=0.0.4",
                    registry.to_prometheus(),
                )
            elif path == "/health":
                if monitor is None:
                    self._send_json(200, {"status": "ok", "rules": []})
                else:
                    doc = monitor.to_health_dict()
                    status = 200 if doc["status"] == "ok" else 503
                    self._send_json(status, doc)
            elif path == "/alerts":
                doc = (
                    monitor.to_alerts_dict()
                    if monitor is not None
                    else {"firing": [], "history": []}
                )
                self._send_json(200, doc)
            elif path == "/":
                self._send(
                    200, "text/plain",
                    "repro health exporter\n"
                    "endpoints: /metrics /health /alerts\n",
                )
            else:
                self._send_json(404, {"error": f"no endpoint {path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass


class HealthServer:
    """Serve a registry (and optionally a monitor) over local HTTP.

    ::

        with HealthServer(monitor=monitor, port=0) as srv:
            print(srv.url)          # http://127.0.0.1:<ephemeral>
            ...                     # scrape while streaming
        # socket closed, thread joined

    ``port=0`` binds an ephemeral port (tests, CI smoke); the bound port
    is available as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        *,
        monitor: Optional[HealthMonitor] = None,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None:
            registry = (
                monitor.registry if monitor is not None else MetricsRegistry()
            )
        self.monitor = monitor
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "HealthServer":
        if self._server is not None:
            return self
        try:
            server = ThreadingHTTPServer(
                (self.host, self._requested_port), _Handler
            )
        except OSError as exc:
            raise HealthError(
                f"cannot bind health exporter on {self.host}:"
                f"{self._requested_port}: {exc}"
            ) from exc
        server.daemon_threads = True
        server.registry = self.registry
        server.monitor = self.monitor
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-health-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, join the thread, release the socket."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HealthServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- addressing ---------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise HealthError("health exporter is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def fetch_url(url: str, *, timeout_s: float = 5.0):
    """GET one endpoint; returns ``(status, body)`` without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise HealthError(f"cannot reach {url}: {exc}") from exc
