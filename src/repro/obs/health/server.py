"""Zero-dependency HTTP exporter: ``/metrics``, ``/health``, ``/alerts``.

A ``ThreadingHTTPServer`` on a daemon thread, serving three read-only
views of the live observability state:

* ``/metrics`` — Prometheus text exposition of the wrapped registry
  (scrape target);
* ``/health``  — JSON rule states; answers 200 while no rule fires and
  503 while one does, so it drops straight into a readiness probe;
* ``/alerts``  — the firing set plus the bounded transition-history
  ring (incident timeline).

The server holds no state of its own — every request re-reads the
registry/monitor — and shuts down cleanly: the bind/serve/close
lifecycle (ephemeral ``port=0``, idempotent start/close, context
manager that joins the serving thread) lives in the shared
:class:`repro.obs.httpd.HttpService` base, which the control-plane API
(:mod:`repro.serve.http`) extends too — one implementation, identical
shutdown semantics.
"""

from __future__ import annotations

from http.server import ThreadingHTTPServer
from typing import Optional, Tuple

from ...errors import HealthError
from ..httpd import HttpService, JsonRequestHandler
from ..httpd import fetch_url as _fetch_url
from ..metrics import MetricsRegistry
from .monitor import HealthMonitor


def render_health_endpoints(
    handler: JsonRequestHandler,
    path: str,
    registry: MetricsRegistry,
    monitor: Optional[HealthMonitor],
) -> bool:
    """Serve one of the shared observability endpoints, if ``path`` is one.

    Returns True when the path was handled.  Shared between the health
    exporter and the control-plane server so one scrape covers ingest
    and serving wherever the registry lives.
    """
    if path == "/metrics":
        handler._send(
            200, "text/plain; version=0.0.4", registry.to_prometheus()
        )
    elif path == "/health":
        if monitor is None:
            handler._send_json(200, {"status": "ok", "rules": []})
        else:
            doc = monitor.to_health_dict()
            status = 200 if doc["status"] == "ok" else 503
            handler._send_json(status, doc)
    elif path == "/alerts":
        doc = (
            monitor.to_alerts_dict()
            if monitor is not None
            else {"firing": [], "history": []}
        )
        handler._send_json(200, doc)
    else:
        return False
    return True


class _Handler(JsonRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: MetricsRegistry = self.server.registry
        monitor: Optional[HealthMonitor] = self.server.monitor
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if render_health_endpoints(self, path, registry, monitor):
                pass
            elif path == "/":
                self._send(
                    200, "text/plain",
                    "repro health exporter\n"
                    "endpoints: /metrics /health /alerts\n",
                )
            else:
                self._send_json(404, {"error": f"no endpoint {path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:
            self._send_error_500(exc)


class HealthServer(HttpService):
    """Serve a registry (and optionally a monitor) over local HTTP.

    ::

        with HealthServer(monitor=monitor, port=0) as srv:
            print(srv.url)          # http://127.0.0.1:<ephemeral>
            ...                     # scrape while streaming
        # socket closed, thread joined

    ``port=0`` binds an ephemeral port (tests, CI smoke); the bound port
    is available as :attr:`port` after :meth:`start`.
    """

    error_class = HealthError
    handler_class = _Handler
    service_name = "health exporter"

    def __init__(
        self,
        *,
        monitor: Optional[HealthMonitor] = None,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host=host, port=port)
        if registry is None:
            registry = (
                monitor.registry if monitor is not None else MetricsRegistry()
            )
        self.monitor = monitor
        self.registry = registry

    def _configure(self, server: ThreadingHTTPServer) -> None:
        server.registry = self.registry
        server.monitor = self.monitor
        server.on_handler_error = self._on_handler_error

    def _on_handler_error(self, path: str, exc: BaseException) -> None:
        self.registry.counter(
            "http_handler_errors_total",
            "unhandled handler exceptions answered with a 500",
        ).inc()


def fetch_url(url: str, *, timeout_s: float = 5.0) -> Tuple[int, str]:
    """GET one endpoint; returns ``(status, body)`` without raising on 4xx/5xx."""
    return _fetch_url(url, timeout_s=timeout_s, error_class=HealthError)
