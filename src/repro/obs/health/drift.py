"""Power-mode distribution drift vs a pinned reference (Table IV).

The paper's fleet-wide projection (Tables V/VI) is only as good as the
stability of the power-mode distribution it was derived from: Table IV's
GPU-hour shares are the weights that turn per-mode savings factors into
campaign MWh.  If the live distribution walks away from the reference
the projection was pinned to, the recommended caps are stale.

:class:`DriftDetector` quantifies that walk with two complementary
signals:

* **total-variation distance** between the live and reference GPU-hour
  share vectors — ``TV(p, q) = 0.5 * sum |p_i - q_i|`` over the four
  modes, the standard bound on how much any event probability (here: any
  union of modes) can differ;
* **per-mode relative error** — catches a single mode drifting while
  the aggregate TV stays small (region 4 holds ~1 % of hours, so its
  collapse barely moves TV but invalidates the boost analysis).

The detector only computes numbers and gauges (``mode_drift_*``);
turning them into alerts is the rule engine's job
(:mod:`repro.obs.health.rules`, see ``mode_drift`` in the default
ruleset).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ... import constants
from ...core.modes import ModeTable
from ...errors import HealthError

#: Below this reference share (percentage points) a mode's relative
#: error is measured against the floor, not the share itself — region 4
#: holds ~1 % of GPU hours and a ratio against that is timer noise.
REL_ERR_FLOOR_PCT = 1.0


def tv_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Total-variation distance between two share vectors.

    Inputs may be percentages or fractions; each side is normalized to a
    probability vector first.  Returns a value in [0, 1].
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise HealthError(
            f"share vectors differ in shape: {p.shape} vs {q.shape}"
        )
    ps, qs = p.sum(), q.sum()
    if ps <= 0 or qs <= 0:
        raise HealthError("share vectors must have positive mass")
    return float(0.5 * np.abs(p / ps - q / qs).sum())


@dataclass(frozen=True)
class DriftReference:
    """A pinned power-mode distribution to compare live streams against."""

    gpu_hours_pct: Tuple[float, ...]
    label: str = "reference"

    def __post_init__(self) -> None:
        if len(self.gpu_hours_pct) != 4:
            raise HealthError("drift reference needs four mode shares")
        if any(s < 0 for s in self.gpu_hours_pct):
            raise HealthError("mode shares must be >= 0")
        if sum(self.gpu_hours_pct) <= 0:
            raise HealthError("mode shares must have positive mass")

    @classmethod
    def paper(cls) -> "DriftReference":
        """The paper's Table IV GPU-hour shares (the seed reference)."""
        return cls(
            gpu_hours_pct=tuple(constants.PAPER_REGION_GPU_HOURS_PCT),
            label="paper Table IV",
        )

    @classmethod
    def from_table(cls, table: ModeTable,
                   label: str = "pinned Table IV") -> "DriftReference":
        """Pin the reference to a computed modal decomposition."""
        return cls(
            gpu_hours_pct=tuple(float(x) for x in table.gpu_hours_pct),
            label=label,
        )

    @classmethod
    def from_file(cls, path) -> "DriftReference":
        """Load ``{"gpu_hours_pct": [...], "label": ...}`` from JSON."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise HealthError(
                f"cannot read drift reference {path}: {exc}"
            ) from exc
        if "gpu_hours_pct" not in doc:
            raise HealthError(f"{path} is not a drift reference")
        return cls(
            gpu_hours_pct=tuple(float(x) for x in doc["gpu_hours_pct"]),
            label=str(doc.get("label", path.name)),
        )

    def to_dict(self) -> dict:
        return {
            "gpu_hours_pct": list(self.gpu_hours_pct),
            "label": self.label,
        }


@dataclass(frozen=True)
class DriftReport:
    """One comparison of a live decomposition against the reference."""

    tv: float
    live_pct: Tuple[float, ...]
    reference_pct: Tuple[float, ...]
    rel_err: Tuple[float, ...]     # per mode, against the floored reference

    @property
    def max_rel_err(self) -> float:
        return max(self.rel_err)

    def gauges(self) -> dict:
        """Unlabelled gauge values for the rule engine's flat snapshot."""
        return {
            "mode_drift_tv": self.tv,
            "mode_drift_max_rel_err": self.max_rel_err,
        }

    def to_dict(self) -> dict:
        return {
            "tv": self.tv,
            "max_rel_err": self.max_rel_err,
            "live_pct": list(self.live_pct),
            "reference_pct": list(self.reference_pct),
            "rel_err": list(self.rel_err),
        }


class DriftDetector:
    """Compare live mode tables against a :class:`DriftReference`."""

    def __init__(self, reference: Optional[DriftReference] = None) -> None:
        self.reference = (
            reference if reference is not None else DriftReference.paper()
        )
        self.last_report: Optional[DriftReport] = None

    def check(self, table: ModeTable) -> DriftReport:
        """Drift of one live decomposition; remembers the report."""
        live = np.asarray(table.gpu_hours_pct, dtype=float)
        ref = np.asarray(self.reference.gpu_hours_pct, dtype=float)
        live_n = 100.0 * live / live.sum()
        ref_n = 100.0 * ref / ref.sum()
        floored = np.maximum(ref_n, REL_ERR_FLOOR_PCT)
        rel_err = np.abs(live_n - ref_n) / floored
        report = DriftReport(
            tv=tv_distance(live_n, ref_n),
            live_pct=tuple(float(x) for x in live_n),
            reference_pct=tuple(float(x) for x in ref_n),
            rel_err=tuple(float(x) for x in rel_err),
        )
        self.last_report = report
        return report

    def export(self, registry, report: Optional[DriftReport] = None) -> None:
        """Mirror a drift report into a metrics registry."""
        report = report if report is not None else self.last_report
        if report is None:
            return
        registry.gauge(
            "mode_drift_tv",
            "total-variation distance of live mode shares vs reference",
        ).set(report.tv)
        registry.gauge(
            "mode_drift_max_rel_err",
            "largest per-mode relative error vs the (floored) reference",
        ).set(report.max_rel_err)
        for i, (live, ref, err) in enumerate(zip(
            report.live_pct, report.reference_pct, report.rel_err
        )):
            region = str(i + 1)
            registry.gauge(
                "mode_share_pct", "live GPU-hour share per mode",
                region=region,
            ).set(live)
            registry.gauge(
                "mode_share_ref_pct", "reference GPU-hour share per mode",
                region=region,
            ).set(ref)
            registry.gauge(
                "mode_drift_rel_err", "per-mode relative error vs reference",
                region=region,
            ).set(err)


def render_drift(report: DriftReport, reference: DriftReference,
                 region_names: Sequence[str]) -> List[str]:
    """Plain-text mode-share comparison (dashboard / experiment output)."""
    name_w = max(len(name) for name in region_names)
    lines = [
        f"mode shares vs {reference.label} "
        f"(TV {report.tv:.3f}, max rel err {report.max_rel_err:.2f}):",
        f"  {'region':<{name_w + 3}} {'live %':>8} {'ref %':>8} {'rel err':>8}",
    ]
    for i, name in enumerate(region_names):
        lines.append(
            f"  {i + 1}: {name:<{name_w}} {report.live_pct[i]:>8.1f} "
            f"{report.reference_pct[i]:>8.1f} {report.rel_err[i]:>8.2f}"
        )
    return lines
