"""Live terminal dashboard for ``repro stream --watch``.

One compact, fixed-layout frame per refresh: ingest state, live mode
shares against the pinned drift reference, the current savings
projection, and the alert board.  Rendering is a pure function of
``(snapshot, monitor, frame)`` so the layout is testable without a
terminal; :class:`Dashboard` adds the only impure part — redrawing in
place with ANSI cursor-home/clear when stdout is a tty, plain
sequential frames otherwise (pipes, CI logs).
"""

from __future__ import annotations

import shutil
import sys
from typing import List, Optional

from ...core.join import REGION_NAMES
from .drift import render_drift
from .monitor import HealthMonitor
from .rules import FIRING, render_events

#: Home the cursor and clear to end of screen: repaint without scrollback
#: spam, unlike a full ``2J`` clear on every frame.
_ANSI_REDRAW = "\x1b[H\x1b[J"

RULE_WIDTH = 72


def render_dashboard(
    snapshot,
    monitor: Optional[HealthMonitor],
    *,
    frame: int = 0,
    history: int = 5,
    forensics=None,
    slo_history=None,
    eventlog=None,
    width: Optional[int] = None,
) -> str:
    """One dashboard frame as plain text (no ANSI).

    ``width`` clips every pane line (with an ellipsis) instead of
    letting the terminal hard-wrap mid-row — on narrow terminals
    (< 100 columns) the frame degrades to truncated lines rather than
    a scrambled layout.
    """
    stats = snapshot.stats
    lines: List[str] = [
        f"repro stream — live health (frame {frame}, "
        f"watermark {stats.watermark_s:,.0f} s, "
        f"{stats.windows_folded} windows folded)",
        "─" * RULE_WIDTH,
        stats.render(),
        "",
    ]

    drift = monitor.drift if monitor is not None else None
    if drift is not None and drift.last_report is not None:
        lines.extend(render_drift(
            drift.last_report, drift.reference, REGION_NAMES
        ))
    elif snapshot.table4 is not None:
        lines.append("mode shares (no drift reference pinned):")
        for row in snapshot.table4.rows:
            lines.append(
                f"  {row.region}: {row.name:<22} {row.gpu_hours_pct:>6.1f} %"
            )
    else:
        lines.append("mode shares: no sealed windows yet")
    lines.append("")

    rec = snapshot.recommendation
    if rec is not None and rec.capped:
        lines.append(
            f"projected savings: cap at {rec.cap:.0f} ({rec.knob}) -> "
            f"{rec.expected_saving_mwh:.0f} MWh ({rec.savings_pct:.2f} %) "
            f"at {rec.runtime_increase_pct:.2f} % runtime increase"
        )
    elif rec is not None:
        lines.append(
            "projected savings: leave uncapped (no savings within the "
            "slowdown budget)"
        )
    else:
        lines.append("projected savings: not enough data yet")
    lines.append("")

    if monitor is None:
        lines.append("alerts: health monitoring off")
    else:
        states = monitor.alerts.rule_states()
        firing = [r for r in states if r["state"] == FIRING]
        status = "DEGRADED" if firing else "ok"
        lines.append(
            f"alerts: {status} — {len(firing)} firing / {len(states)} "
            f"rules ({monitor.alerts.evaluations} evaluations)"
        )
        for row in states:
            marker = {
                "inactive": " ", "pending": "~", "firing": "!",
            }[row["state"]]
            value = row["value"]
            shown = "-" if value is None else f"{value:g}"
            lines.append(
                f"  [{marker}] {row['name']:<28} {row['state']:<9} "
                f"value={shown}"
            )
        recent = list(monitor.alerts.history)[-history:]
        if recent:
            lines.append(render_events(recent, title="recent transitions:"))
    lines.extend(_incident_pane(forensics))
    lines.extend(_slo_pane(slo_history))
    lines.extend(_logs_pane(eventlog))
    body = "\n".join(lines)
    if width is not None:
        clip = max(20, int(width))
        body = "\n".join(
            line if len(line) <= clip else line[: clip - 1] + "…"
            for line in body.split("\n")
        )
    return body


def _incident_pane(forensics, *, recent: int = 3) -> List[str]:
    """The flight-recorder incidents pane (empty when no recorder)."""
    if forensics is None:
        return []
    summary = forensics.summary()
    lines = [
        "",
        f"incidents: {summary['incidents_open']} open / "
        f"{summary['incidents_total']} total "
        f"({summary['windows_recorded']} windows recorded, "
        f"{summary['findings_total']} findings)",
    ]
    for incident in forensics.incidents.incidents[-recent:]:
        marker = "!" if incident.open else " "
        lines.append(
            f"  [{marker}] {incident.id} {incident.detector:<18} "
            f"[{incident.severity}] windows "
            f"{incident.first_window}..{incident.last_window} "
            f"{incident.status}"
        )
    return lines


def _logs_pane(eventlog, *, recent: int = 6) -> List[str]:
    """The live structured-log tail pane (empty when no log attached)."""
    if eventlog is None:
        return []
    from ..log.query import render_record, tail

    records = eventlog.records()
    lines = [
        "",
        f"events: {eventlog.emitted} emitted "
        f"({eventlog.suppressed} suppressed, {eventlog.evicted} evicted)"
        + (f" — last {min(recent, len(records))}:" if records else ""),
    ]
    if not records:
        lines.append("  (no events yet)")
    for rec in tail(records, recent):
        lines.append("  " + render_record(rec))
    return lines


def _slo_pane(history) -> List[str]:
    """The SLO burn-rate pane (empty when no history is attached)."""
    if history is None:
        return []
    lines = [
        "",
        "slo error budgets (burn = multiples of sustainable spend):",
        f"  {'slo':<16} {'budget left':>11} {'burn 5m/1h':>11} "
        f"{'burn 6h/3d':>11}  state",
    ]
    markers = {"inactive": " ", "pending": "~", "firing": "!"}
    for row in history.slo_rows():
        fast = markers.get(row["fast_state"], "?")
        slow = markers.get(row["slow_state"], "?")
        lines.append(
            f"  {row['name']:<16} {100 * row['budget_remaining']:>10.2f}% "
            f"{row['burn_fast']:>11.2f} {row['burn_slow']:>11.2f}  "
            f"[{fast}]fast [{slow}]slow"
        )
    return lines


class Dashboard:
    """Redraw dashboard frames in place on a terminal.

    On a tty each frame repaints from the top-left; on anything else
    frames print sequentially with a separator, so piped output stays a
    readable transcript.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.frame = 0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def update(self, snapshot, monitor: Optional[HealthMonitor],
               forensics=None, history=None, eventlog=None) -> None:
        self.frame += 1
        # Clip to the live terminal width so a narrow tty (< 100 cols)
        # truncates rows instead of hard-wrapping them mid-pane.
        width = (
            shutil.get_terminal_size().columns if self._tty else None
        )
        body = render_dashboard(
            snapshot, monitor, frame=self.frame, forensics=forensics,
            slo_history=history, eventlog=eventlog, width=width,
        )
        if self._tty:
            self.stream.write(_ANSI_REDRAW + body + "\n")
        else:
            if self.frame > 1:
                self.stream.write("\n" + "=" * RULE_WIDTH + "\n")
            self.stream.write(body + "\n")
        self.stream.flush()
