"""The health monitor: registry snapshots in, alert state out.

:class:`HealthMonitor` owns one :class:`~repro.obs.metrics.MetricsRegistry`
(or wraps one it is given), an :class:`~repro.obs.health.rules.AlertEngine`,
and a :class:`~repro.obs.health.drift.DriftDetector`, and advances all of
them from a single deterministic input: a flat metric snapshot plus an
event-time stamp.  Everything downstream — the ``/health`` and
``/alerts`` endpoints, the ``--watch`` dashboard, the ``ext_stream``
alert timeline — reads the monitor; nothing writes back into the
pipeline, which is what keeps health evaluation bitwise-invisible to
experiment outputs.

The streaming hook (:meth:`observe_engine`) is driven by the engine's
*watermark*, not the wall clock, so a replayed campaign produces the
identical alert timeline every run.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from ...core.modes import decompose_modes
from ...errors import ProjectionError
from .. import runtime as _obs
from ..metrics import MetricsRegistry
from .drift import DriftDetector, DriftReference
from .rules import AlertEngine, RuleSpec, default_rules


class HealthMonitor:
    """Rules + drift detection over periodic metric snapshots."""

    def __init__(
        self,
        rules: Optional[List[RuleSpec]] = None,
        *,
        reference: Optional[DriftReference] = None,
        registry: Optional[MetricsRegistry] = None,
        drift: bool = True,
        history_size: int = 256,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts = AlertEngine(
            rules if rules is not None else default_rules(),
            history_size=history_size,
        )
        self.drift: Optional[DriftDetector] = (
            DriftDetector(reference) if drift else None
        )
        self.events: List[dict] = []

    # -- evaluation ---------------------------------------------------------------

    def observe(self, values: Mapping[str, float],
                now_s: float) -> List[dict]:
        """One evaluation round: gauges, rules, exports.

        ``values`` is a flat unlabelled name → value snapshot (the shape
        of :meth:`MetricsRegistry.counter_values`); ``now_s`` is event
        time and must be non-decreasing across calls.  Returns the alert
        transitions this round produced.
        """
        for name, value in values.items():
            if np.isfinite(value):
                self.registry.gauge(name).set(float(value))
        events = self.alerts.evaluate(values, now_s)
        self.events.extend(events)
        self.alerts.export(self.registry)
        # Mirror health state into the global obs registry too, so run
        # manifests written with --obs carry the alert outcome.
        st = _obs.state()
        if st is not None and st.registry is not self.registry:
            self.alerts.export(st.registry)
        return events

    def observe_engine(self, engine) -> List[dict]:
        """Evaluate against a live :class:`~repro.stream.engine.StreamEngine`.

        Reads the engine's ingest counters and (when windows have been
        folded) the live Table IV decomposition; never mutates engine
        state beyond reading a copied cube.
        """
        stats = engine.stats
        values = dict(engine.metric_values())
        if self.drift is not None and stats.windows_folded > 0:
            try:
                table4 = decompose_modes(engine.cube(copy=True))
            except ProjectionError:
                table4 = None
            if table4 is not None:
                report = self.drift.check(table4)
                values.update(report.gauges())
                self.drift.export(self.registry, report)
                st = _obs.state()
                if st is not None and st.registry is not self.registry:
                    self.drift.export(st.registry, report)
        now_s = _event_time(stats)
        return self.observe(values, now_s)

    # -- views --------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return self.alerts.healthy

    def to_health_dict(self) -> dict:
        doc = self.alerts.to_health_dict()
        if self.drift is not None:
            doc["drift"] = {
                "reference": self.drift.reference.to_dict(),
                "report": (
                    self.drift.last_report.to_dict()
                    if self.drift.last_report is not None
                    else None
                ),
            }
        return doc

    def to_alerts_dict(self) -> dict:
        return self.alerts.to_alerts_dict()


def _event_time(stats) -> float:
    """The deterministic evaluation clock for one engine snapshot.

    Prefers the watermark (the engine's own notion of settled event
    time); before any sample arrives both sentinels are non-finite and
    the clock pins to 0.
    """
    for candidate in (stats.watermark_s, stats.max_event_time_s):
        if np.isfinite(candidate):
            return float(candidate)
    return 0.0
