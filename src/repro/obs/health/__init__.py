"""Health monitoring: alert rules, drift detection, exporter, dashboard.

The closing of the observability loop (see :mod:`repro.obs`): PR 3's
metrics and traces record what a run *did*; this package watches what a
*live* run is doing and says so — in rule state machines
(:mod:`~repro.obs.health.rules`), a power-mode drift detector pinned to
Table IV (:mod:`~repro.obs.health.drift`), an HTTP exporter serving
``/metrics`` / ``/health`` / ``/alerts``
(:mod:`~repro.obs.health.server`), and an in-place terminal dashboard
(:mod:`~repro.obs.health.dashboard`).

Everything is clock-free by construction: evaluation is driven by the
stream's event-time watermark, so a replayed campaign yields the
identical alert timeline, and the whole layer is read-only with respect
to the pipeline — outputs stay bitwise identical with health monitoring
on (asserted in ``tests/obs/``).

Usage::

    from repro.obs.health import HealthMonitor, HealthServer

    monitor = HealthMonitor()           # default ruleset + paper reference
    engine.attach_health(monitor)       # evaluated per drained window
    with HealthServer(monitor=monitor, port=9109) as srv:
        engine.run(source)              # scrape srv.url + "/metrics"
    print(monitor.to_health_dict()["status"])

or from the CLI: ``repro stream --watch --serve 9109``.
"""

from .dashboard import Dashboard, render_dashboard
from .drift import (
    DriftDetector,
    DriftReference,
    DriftReport,
    render_drift,
    tv_distance,
)
from .monitor import HealthMonitor
from .rules import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    RuleSpec,
    default_rules,
    load_rules,
    parse_rules,
    render_events,
)
from .server import HealthServer, fetch_url

__all__ = [
    "Dashboard",
    "render_dashboard",
    "DriftDetector",
    "DriftReference",
    "DriftReport",
    "render_drift",
    "tv_distance",
    "HealthMonitor",
    "DEFAULT_RULES_PATH",
    "AlertEngine",
    "RuleSpec",
    "default_rules",
    "load_rules",
    "parse_rules",
    "render_events",
    "HealthServer",
    "fetch_url",
]
