"""Run-wide observability: metrics, tracing spans, and run manifests.

An out-of-band telemetry paper deserves telemetry about itself.  This
package records what happens *inside* a run of the reproduction — the
batch pipeline, the streaming engine, the benchmark sweeps, and every
experiment — without changing a single output bit:

* :mod:`repro.obs.metrics`  — a process-safe registry of counters,
  gauges, and bounded histograms with zero-dependency Prometheus-text
  and JSON exporters;
* :mod:`repro.obs.trace`    — spans with monotonic timings and
  parent/child context that propagate across
  :func:`repro.parallel.chunked_map` workers into one trace tree;
* :mod:`repro.obs.profiling` — span-linked profiles: a stack sampler
  tagging every sample with the innermost active span, per-span
  :mod:`tracemalloc` memory deltas, collapsed-stack/Chrome-trace
  exporters, and named span perf budgets (``repro obs profile
  --check``).  Imported lazily — nothing pays for the profiler until
  :func:`~repro.obs.runtime.start_profiling`;
* :mod:`repro.obs.manifest` — run manifests capturing config, seed,
  package versions, git revision, wall/CPU time, and output digests,
  plus summary/diff tooling (``repro obs summary`` / ``repro obs diff``);
* :mod:`repro.obs.runtime`  — the global on/off switch.  Disabled (the
  default), every instrumentation site is a no-op fast path costing a
  global read and a branch; the hot paths stay within a < 2 % overhead
  budget enforced by ``benchmarks/bench_batch.py``.
* :mod:`repro.obs.health`   — the consuming side: alert rules with
  pending/firing/resolved state machines, power-mode drift detection
  against a pinned Table IV reference, an HTTP exporter
  (``/metrics``, ``/health``, ``/alerts``), and the ``repro stream
  --watch`` dashboard.  Imported lazily (``repro.obs.health``) because
  it sits *above* the pipeline the rest of this package instruments.

Usage::

    from repro import obs

    obs.enable()
    ...                                   # any pipeline / stream / bench work
    obs.manifest.write_run_artifacts(
        "results/obs", command="my-run", outputs=["results/table5.txt"],
    )
    obs.disable()

or, from the CLI: ``repro run table5 --obs --out results/``.

See ``docs/observability.md`` for the metric-name and span taxonomies,
the manifest schema, and the overhead budget.
"""

from . import manifest
from .manifest import (
    RunManifest,
    build_manifest,
    diff_manifests,
    load_manifest,
    summarize_manifest,
    write_run_artifacts,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .runtime import (
    ObsState,
    absorb,
    counter_inc,
    disable,
    enable,
    enabled,
    export_context,
    gauge_set,
    observe,
    run_traced,
    span,
    start_profiling,
    state,
    stop_profiling,
)
from .trace import NOOP_SPAN, Span, Tracer, aggregate_spans


def __getattr__(name):
    # Lazy: health imports repro.core (for the Table IV decomposition),
    # and repro.core imports repro.obs.runtime — an eager import here
    # would close that cycle during interpreter start-up.  profiling is
    # lazy for cost, not cycles: nothing pays for the profiler until
    # start_profiling() is called.
    if name in ("health", "profiling", "forensics"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "health",
    "profiling",
    "forensics",
    "manifest",
    "RunManifest",
    "build_manifest",
    "diff_manifests",
    "load_manifest",
    "summarize_manifest",
    "write_run_artifacts",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "ObsState",
    "absorb",
    "counter_inc",
    "disable",
    "enable",
    "enabled",
    "export_context",
    "gauge_set",
    "observe",
    "run_traced",
    "span",
    "start_profiling",
    "state",
    "stop_profiling",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "aggregate_spans",
]
