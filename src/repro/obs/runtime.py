"""Global observability state and the zero-cost-when-off entry points.

Observability is **off by default**.  Every instrumentation site in the
hot paths is written against this module's tiny contract:

* ``state()`` returns ``None`` when disabled — one global read.  Hot
  wrappers (:meth:`repro.gpu.GPUDevice.run_batch`,
  :meth:`repro.stream.buffer.ReorderBuffer.push`) check it once and
  tail-call the raw implementation, so the disabled overhead is a
  function call and a branch (< 2 % of the hot path, asserted by
  ``benchmarks/bench_batch.py --overhead-only``).
* ``span(name)`` returns a shared no-op context manager when disabled,
  so colder call sites can instrument unconditionally.

``enable()`` installs a fresh :class:`~repro.obs.metrics.MetricsRegistry`
plus :class:`~repro.obs.trace.Tracer`; ``disable()`` removes them (and
stops any attached profiler).  :func:`start_profiling` /
:func:`stop_profiling` attach the span-linked sampling profiler
(:mod:`repro.obs.profiling`) on top.  The cross-process helpers
(:func:`export_context`, :func:`run_traced`, :func:`absorb`) are what
:func:`repro.parallel.chunked_map` uses to carry spans, metrics, and
profile samples across worker processes — all folded back in chunk
order, so every collected artifact is worker-count invariant.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .trace import _CURRENT, NOOP_SPAN, Tracer


class ObsState:
    """The enabled bundle: one registry + one tracer (+ profiler, log)."""

    __slots__ = ("registry", "tracer", "profiler", "eventlog")

    def __init__(self, registry: MetricsRegistry, tracer: Tracer) -> None:
        self.registry = registry
        self.tracer = tracer
        #: Optional :class:`repro.obs.profiling.SamplingProfiler`,
        #: attached by :func:`start_profiling`.
        self.profiler = None
        #: Optional :class:`repro.obs.log.EventLog` — the sink
        #: :func:`log_event` emits into; workers fold theirs back
        #: through the :func:`run_traced` payload.
        self.eventlog = None


_STATE: Optional[ObsState] = None


def enable(*, root_parent: Optional[str] = None,
           max_spans: int = 100_000, log=None) -> ObsState:
    """Turn observability on with fresh state; returns the state.

    ``log`` optionally attaches an :class:`repro.obs.log.EventLog` so
    instrumentation sites using :func:`log_event` (shard checkpoints,
    worker fold units) have somewhere to emit; worker processes get a
    sibling log built from its exported config and their records fold
    back in canonical chunk order.
    """
    global _STATE
    _STATE = ObsState(
        MetricsRegistry(),
        Tracer(root_parent=root_parent, max_spans=max_spans),
    )
    _STATE.eventlog = log
    return _STATE


def disable() -> None:
    """Turn observability off (instrumentation reverts to no-ops)."""
    global _STATE
    st = _STATE
    if st is not None and st.profiler is not None:
        st.profiler.stop()
    _STATE = None


def start_profiling(*, interval_s: float = 0.005,
                    memory: bool = False):
    """Attach a span-linked sampling profiler to the live state.

    Enables observability first if needed (the profiler tags samples
    with the tracer's active span, so a tracer must exist).  Idempotent:
    a second call returns the already-running profiler.  With
    ``memory=True``, :mod:`tracemalloc` span hooks stamp per-span
    ``mem_net_kb``/``mem_peak_kb`` attributes and the top allocation
    sites are captured at stop.
    """
    st = _STATE if _STATE is not None else enable()
    if st.profiler is not None:
        return st.profiler
    from .profiling import SamplingProfiler

    st.profiler = SamplingProfiler(
        tracer=st.tracer, interval_s=interval_s, memory=memory,
    ).start()
    return st.profiler


def stop_profiling():
    """Stop the attached profiler (if any) and return it, still attached.

    The profiler stays on the state so artifact writers can read its
    samples until :func:`disable` tears everything down.
    """
    st = _STATE
    if st is None or st.profiler is None:
        return None
    return st.profiler.stop()


def enabled() -> bool:
    return _STATE is not None


def state() -> Optional[ObsState]:
    """The live state, or ``None`` when observability is disabled."""
    return _STATE


def span(name: str, **attrs):
    """A tracing span, or the shared no-op when disabled."""
    st = _STATE
    if st is None:
        return NOOP_SPAN
    return st.tracer.span(name, **attrs)


def counter_inc(name: str, amount: float = 1.0, **labels) -> None:
    st = _STATE
    if st is not None:
        st.registry.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels) -> None:
    st = _STATE
    if st is not None:
        st.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    st = _STATE
    if st is not None:
        st.registry.histogram(name, **labels).observe(value)


def log_event(severity: str, event: str, msg: str = "", **kwargs) -> None:
    """Emit a structured log record when an event log is attached.

    The disabled path is one module-global read and an attribute check
    — the same zero-cost-when-off contract as :func:`span`, so call
    sites on warm paths need no extra guard.
    """
    st = _STATE
    if st is not None and st.eventlog is not None:
        st.eventlog.emit(severity, event, msg, **kwargs)


# -- cross-process propagation ---------------------------------------------------


def export_context() -> Optional[dict]:
    """Picklable trace context for worker processes (None when off)."""
    st = _STATE
    if st is None:
        return None
    context: dict = {"parent_span_id": st.tracer.current_id()}
    if st.profiler is not None:
        context["profile"] = st.profiler.export_config()
    if st.eventlog is not None:
        context["log"] = st.eventlog.export_config()
    return context


def run_traced(fn, args: Sequence, context: dict,
               attrs: Optional[dict] = None) -> Tuple[object, dict]:
    """Run ``fn(*args)`` in a worker under a fresh traced state.

    Enables observability rooted at the parent's exported span id, wraps
    the call in a ``parallel.task`` span, and returns
    ``(result, payload)`` where the payload carries the worker's metric
    state and finished spans back for :func:`absorb`.  Always disables
    on the way out so pooled workers start clean on their next task.
    """
    st = enable(root_parent=context.get("parent_span_id"))
    profile_config = context.get("profile")
    if profile_config is not None:
        from .profiling import SamplingProfiler

        st.profiler = SamplingProfiler(
            tracer=st.tracer, **profile_config
        ).start()
    log_config = context.get("log")
    if log_config is not None:
        from .log import EventLog

        st.eventlog = EventLog(**log_config)
    # Forked pool workers inherit the parent's context variables; clear
    # the current-span slot so parentage comes from the exported context.
    token = _CURRENT.set(None)
    try:
        with st.tracer.span("parallel.task", **(attrs or {})):
            result = fn(*args)
        payload = {
            "metrics": st.registry.state(),
            "spans": st.tracer.finished,
            "dropped": st.tracer.dropped,
        }
        if st.profiler is not None:
            payload["profile"] = st.profiler.stop().state_dict()
        if st.eventlog is not None:
            payload["logs"] = st.eventlog.drain()
    finally:
        _CURRENT.reset(token)
        disable()
    return result, payload


def absorb(payload: Optional[dict]) -> None:
    """Fold a worker payload from :func:`run_traced` into this process."""
    st = _STATE
    if st is None or payload is None:
        return
    st.registry.merge_state(payload["metrics"])
    st.tracer.absorb(payload["spans"], payload.get("dropped", 0))
    profile_state = payload.get("profile")
    if profile_state is not None and st.profiler is not None:
        st.profiler.absorb_state(profile_state)
    log_records = payload.get("logs")
    if log_records and st.eventlog is not None:
        st.eventlog.absorb(log_records)
