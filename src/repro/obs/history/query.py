"""Pure-function range queries over a :class:`HistoryStore`.

:func:`select` is the one read path behind ``/v1/query``, ``repro obs
query``, and the SLO layer's offline replays: given a series, a time
range, and a step, it picks the coarsest rollup level whose bucket span
still divides the step (automatic resolution selection — a 90-day query
at 1 h steps reads ~2,160 level-2 rows instead of ~518,400 level-0
rows), gathers the level's rows for the range via memmap slices, and
folds each step bucket with the store's canonical
:func:`~repro.obs.history.store.fold_values`.

:func:`verify_rollups` is the bitwise gate: it refolds every rollup
bucket from its constituent level-0 rows through the same fold and
reports any bit that differs — the history analogue of the
``merge_cubes`` equivalence tests, run in CI by ``repro obs query
--check`` and ``bench_query.py --check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...errors import HistoryError
from .store import AGGS, HistoryStore, fold_values

#: Aggregations accepted by :func:`select`: the store folds plus the
#: derived ones computable from a gathered value run.
QUERY_AGGS = AGGS + ("mean", "count")


@dataclass(frozen=True)
class QueryResult:
    """One answered range query, JSON-ready via :meth:`to_dict`."""

    series: str
    agg: str
    level: int
    step_s: float
    t0_s: float
    t1_s: float
    t_s: List[float]                 # bucket start times
    values: List[Optional[float]]    # None = empty bucket
    rows_scanned: int

    def to_dict(self) -> dict:
        return {
            "series": self.series,
            "agg": self.agg,
            "level": self.level,
            "step_s": self.step_s,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "t_s": self.t_s,
            "values": self.values,
            "rows_scanned": self.rows_scanned,
        }


def auto_level(store: HistoryStore, step_s: float) -> int:
    """Coarsest level whose bucket span fits inside the step."""
    if store.window_s is None:
        return 0
    best = 0
    for level in range(store.n_levels):
        span = store.level_span_s(level)
        if span is not None and span <= step_s:
            best = level
    return best


def select(
    store: HistoryStore,
    series: str,
    t0: float,
    t1: float,
    step: float,
    *,
    agg: Optional[str] = None,
    level: Optional[int] = None,
    max_row: Optional[int] = None,
) -> QueryResult:
    """Aggregate ``series`` over ``[t0, t1)`` into ``step``-wide buckets.

    ``agg`` defaults to the series' declared fold; ``level`` defaults to
    automatic resolution selection.  ``max_row`` bounds the readable
    rows per level (the control plane passes the row count frozen at
    publish time, so a served view answers identically however far
    ingest has advanced since).
    """
    t0, t1, step = float(t0), float(t1), float(step)
    if not (np.isfinite(t0) and np.isfinite(t1) and np.isfinite(step)):
        raise HistoryError("t0, t1, and step must be finite")
    if t1 <= t0:
        raise HistoryError(f"empty time range [{t0}, {t1})")
    if step <= 0:
        raise HistoryError("step must be positive")
    store_agg = store.series_agg(series)  # validates the series name
    agg = store_agg if agg is None else str(agg)
    if agg not in QUERY_AGGS:
        raise HistoryError(
            f"unknown aggregation {agg!r} "
            f"(expected one of {', '.join(QUERY_AGGS)})"
        )
    level = auto_level(store, step) if level is None else int(level)
    if not 0 <= level < store.n_levels:
        raise HistoryError(
            f"level {level} out of range (store has {store.n_levels})"
        )
    n_buckets = int(np.ceil((t1 - t0) / step))
    if n_buckets > 1_000_000:
        raise HistoryError(
            f"query would produce {n_buckets} buckets; raise step"
        )
    r0, r1 = store.row_range(level, t0, t1)
    if max_row is not None:
        r1 = min(r1, int(max_row))
        r0 = min(r0, r1)
    t = store.column_slice("t_start_s", level, r0, r1)
    v = store.column_slice(series, level, r0, r1)
    edges = t0 + step * np.arange(n_buckets + 1, dtype=np.float64)
    edges[-1] = min(edges[-1], t1)
    idx = np.searchsorted(t, edges, side="left")
    t_out: List[float] = []
    values: List[Optional[float]] = []
    for i in range(n_buckets):
        a, b = int(idx[i]), int(idx[i + 1])
        t_out.append(float(edges[i]))
        if b <= a:
            values.append(None)
            continue
        if agg == "count":
            val = float(b - a)
        elif agg == "mean":
            val = float(np.add.reduce(v[a:b]) / (b - a))
        else:
            val = fold_values(v[a:b], agg)
        # JSON-safe: NaN columns (e.g. cap_w before any decision)
        # become null, like the serve layer's _finite().
        values.append(val if np.isfinite(val) else None)
    return QueryResult(
        series=series,
        agg=agg,
        level=level,
        step_s=step,
        t0_s=t0,
        t1_s=t1,
        t_s=t_out,
        values=values,
        rows_scanned=int(r1 - r0),
    )


def verify_rollups(
    store: HistoryStore,
    *,
    levels: Optional[List[int]] = None,
    max_mismatches: int = 10,
) -> List[dict]:
    """Refold every rollup bucket from level 0; report bitwise diffs.

    Returns an empty list when every aggregate at every checked level
    is bitwise-equal to :func:`fold_values` over its constituent
    level-0 rows.  Buckets whose level-0 rows were garbage-collected
    are skipped (gc is segment-granular and level-independent).
    Work is bounded per bucket, so the check streams over stores
    larger than memory.
    """
    mismatches: List[dict] = []
    check_levels = (
        list(range(1, store.n_levels)) if levels is None else levels
    )
    dropped0 = store.dropped_rows(0)
    rows0 = store.rows(0)
    for level in check_levels:
        if not 1 <= level < store.n_levels:
            raise HistoryError(f"no rollup level {level}")
        span = store.level_span_rows(level)
        dropped = store.dropped_rows(level)
        for local in range(store.rows(level)):
            g = dropped + local          # global bucket index
            g0 = g * span                # first global level-0 row
            a, b = g0 - dropped0, g0 + span - dropped0
            if a < 0 or b > rows0:
                continue  # constituents gc'd (or not yet appended)
            block = store._rows_block(level, local, local + 1)[0]
            block0 = store._rows_block(0, a, b)
            for j, (name, agg) in enumerate(store.columns):
                want = fold_values(block0[:, j], agg)
                got = float(block[j])
                if np.float64(want).tobytes() != (
                    np.float64(got).tobytes()
                ):
                    mismatches.append({
                        "level": level,
                        "bucket": g,
                        "series": name,
                        "agg": agg,
                        "stored": got,
                        "refold": want,
                    })
                    if len(mismatches) >= max_mismatches:
                        return mismatches
    return mismatches
