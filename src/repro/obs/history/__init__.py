"""Long-horizon history: columnar retention, range queries, SLOs.

The retention layer of the observability stack (metrics → traces →
profiles → health → forensics → **history**): where the flight
recorder keeps a bounded ring of recent windows, the history store
keeps *every* window — compacted to one columnar row — in chunked
memmap segments with deterministic multi-resolution rollups, so
"what did fleet energy look like last week?" is a < 50 ms range query
instead of a campaign replay.  :class:`History` is the facade that
ties the pieces to a :class:`~repro.stream.engine.StreamEngine` via
``engine.attach_history(history)``:

* :class:`~.store.HistoryStore` — append-only out-of-core columnar
  segments + rollup levels (see ``docs/observability.md``);
* :func:`~.query.select` — the pure range-query engine behind
  ``/v1/query`` and ``repro obs query``;
* :mod:`~.slo` — multi-window burn-rate SLOs over the stored series,
  evaluated per sealed window by a standard
  :class:`~repro.obs.health.rules.AlertEngine` and exported as
  ``slo_*`` gauges.

Everything is a pure read of the window stream: attaching a history
changes no analytic output bit (asserted in ``tests/obs/`` and by
``bench_query.py --check``), and both the stored rows and the SLO
alert timeline are deterministic — same campaign, same bytes, same
transitions, whatever the arrival chunking.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ... import constants
from ..forensics.recorder import make_record
from ..health.rules import AlertEngine, render_events
from .query import QueryResult, auto_level, select, verify_rollups
from .slo import (
    FAST_BURN,
    SLO,
    SLOW_BURN,
    BurnWindow,
    SLOEvaluator,
    default_slos,
    replay,
    slo_rules,
)
from .store import (
    AGGS,
    DEFAULT_CHUNK_ROWS,
    DEFAULT_ROLLUP_FACTORS,
    HistoryStore,
    fold_values,
)

__all__ = [
    "AGGS",
    "BurnWindow",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_POWER_BUDGET_W",
    "DEFAULT_ROLLUP_FACTORS",
    "FAST_BURN",
    "History",
    "HistoryStore",
    "QueryResult",
    "SLO",
    "SLOEvaluator",
    "SLOW_BURN",
    "auto_level",
    "default_slos",
    "fold_values",
    "history_columns",
    "replay",
    "select",
    "slo_rules",
    "verify_rollups",
]

#: Per-GCD power budget backing the ``energy_budget`` SLO: 95 % of the
#: hardware limit — energy charged above it spends the error budget.
DEFAULT_POWER_BUDGET_W = 0.95 * constants.GCD_MAX_POWER_W

#: Requests slower than this spend the ``serve_latency`` SLO budget
#: (a finite bucket bound of ``SERVE_LATENCY_BUCKETS``).
DEFAULT_SLOW_REQUEST_S = 0.005

#: Canonical mode order of the region columns (REGION_NAMES).
_REGION_KEYS = ("idle", "mi", "ci", "pv")


def history_columns() -> List[Tuple[str, str]]:
    """The standard per-window schema: (series name, fold agg).

    One row per sealed window, every field a float64: the
    :class:`~repro.obs.forensics.recorder.WindowRecord` fleet scalars,
    the canonical region split, ingest/alert deltas, the decision in
    force, and the SLO good/bad accounting columns.
    """
    cols: List[Tuple[str, str]] = [
        ("t_start_s", "min"),
        ("t_end_s", "max"),
        ("samples", "sum"),
        ("gpu_samples", "sum"),
        ("nodes", "max"),
        ("energy_j", "sum"),
        ("gpu_hours", "sum"),
        ("max_gpu_power_w", "max"),
        ("over_limit_samples", "sum"),
    ]
    cols += [(f"region_energy_{k}_j", "sum") for k in _REGION_KEYS]
    cols += [(f"region_gpu_hours_{k}", "sum") for k in _REGION_KEYS]
    cols += [
        ("cap_w", "last"),
        ("published_version", "last"),
        ("samples_in_delta", "sum"),
        ("late_dropped_delta", "sum"),
        ("duplicates_delta", "sum"),
        ("alerts_firing", "max"),
        ("alert_transitions_delta", "sum"),
        ("energy_budget_j", "sum"),
        ("energy_over_budget_j", "sum"),
        ("serve_requests", "sum"),
        ("serve_slow_requests", "sum"),
    ]
    return cols


class History:
    """Store + SLO evaluation behind one engine observer.

    Attach to an engine with ``engine.attach_history(history)``; every
    sealed window is compacted to one columnar row, appended to the
    store (rolling up as buckets complete), and the SLO burn rates are
    re-evaluated at the window's end time.  A control plane
    additionally wires :meth:`set_decision_feed` (rows carry the cap
    in force) and :meth:`set_registry` (per-window serve-latency
    good/bad counts for the ``serve_latency`` SLO).
    """

    def __init__(
        self,
        *,
        dir: Optional[Union[str, Path]] = None,
        store: Optional[HistoryStore] = None,
        slos: Optional[List[SLO]] = None,
        monitor=None,
        power_limit_w: float = constants.GCD_MAX_POWER_W,
        power_budget_w: float = DEFAULT_POWER_BUDGET_W,
        slow_request_s: float = DEFAULT_SLOW_REQUEST_S,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        rollup_factors=DEFAULT_ROLLUP_FACTORS,
    ) -> None:
        self._dir = None if dir is None else Path(dir)
        self.store = store
        self.slos = list(slos) if slos is not None else default_slos()
        self.monitor = monitor
        self.power_limit_w = float(power_limit_w)
        self.power_budget_w = float(power_budget_w)
        self.slow_request_s = float(slow_request_s)
        self.interval_s = float(interval_s)
        self.chunk_rows = int(chunk_rows)
        self.rollup_factors = tuple(rollup_factors)
        self.evaluator = SLOEvaluator(self.slos)
        self.slo_alerts = AlertEngine(slo_rules(self.slos))
        self._decision_feed = None
        self._registry = None
        self._registry_lock = None
        self._engine = None
        self._index = 0
        self._prev_samples_in = 0
        self._prev_late = 0
        self._prev_dup = 0
        self._prev_transitions = 0
        self._prev_serve = (0.0, 0.0)

    # -- wiring -------------------------------------------------------------------

    def bind_engine(self, engine) -> "History":
        """Adopt the engine's stream geometry (via attach_history)."""
        self._engine = engine
        self.interval_s = float(engine.buffer.interval_s)
        if self.store is None:
            self.store = HistoryStore(
                history_columns(),
                dir=self._dir,
                chunk_rows=self.chunk_rows,
                rollup_factors=self.rollup_factors,
                window_s=float(engine.buffer.window_s),
                meta={
                    "schema": "window-record",
                    "interval_s": self.interval_s,
                    "power_limit_w": self.power_limit_w,
                    "power_budget_w": self.power_budget_w,
                },
            )
        return self

    def set_decision_feed(self, feed) -> "History":
        self._decision_feed = feed
        return self

    def set_monitor(self, monitor) -> "History":
        self.monitor = monitor
        return self

    def set_registry(self, registry, lock=None) -> "History":
        """Read serve-latency histogram totals from this registry.

        ``lock`` (the plane's ``metrics_lock``) guards the read against
        concurrent request metering.
        """
        self._registry = registry
        self._registry_lock = lock
        return self

    # -- the window observer ------------------------------------------------------

    def _serve_totals(self) -> Tuple[float, float]:
        if self._registry is None:
            return 0.0, 0.0
        if self._registry_lock is not None:
            with self._registry_lock:
                return self._registry.histogram_totals(
                    "serve_request_seconds", self.slow_request_s
                )
        return self._registry.histogram_totals(
            "serve_request_seconds", self.slow_request_s
        )

    def observe_window(self, window) -> None:
        """Append one sealed window's row; re-evaluate the SLOs."""
        if len(window) == 0:
            return
        cap = objective = version = frontier = None
        if self._decision_feed is not None:
            cap, objective, version, frontier = self._decision_feed()
        samples_in = late = dup = 0
        if self._engine is not None:
            buf = self._engine.buffer
            samples_in = buf.samples_in - self._prev_samples_in
            late = buf.late_dropped - self._prev_late
            dup = buf.duplicates - self._prev_dup
            self._prev_samples_in = buf.samples_in
            self._prev_late = buf.late_dropped
            self._prev_dup = buf.duplicates
        firing = transitions = 0
        if self.monitor is not None:
            alerts = self.monitor.alerts
            firing = sum(
                1 for row in alerts.rule_states()
                if row["state"] == "firing"
            )
            transitions = alerts.transitions - self._prev_transitions
            self._prev_transitions = alerts.transitions
        record = make_record(
            window,
            index=self._index,
            interval_s=self.interval_s,
            power_limit_w=self.power_limit_w,
            cap=cap,
            objective=objective,
            published_version=version,
            published_frontier_s=frontier,
            samples_in_delta=samples_in,
            late_dropped_delta=late,
            duplicates_delta=dup,
            alerts_firing=firing,
            alert_transitions_delta=transitions,
        )
        self._index += 1
        gpus = window.gpu_power_w.shape[1]
        gpu_samples = float(record.samples * gpus)
        gpu_seconds = gpu_samples * self.interval_s
        budget_j = self.power_budget_w * gpu_seconds
        over_j = max(0.0, record.energy_j - budget_j)
        serve_total, serve_fast = self._serve_totals()
        prev_total, prev_fast = self._prev_serve
        self._prev_serve = (serve_total, serve_fast)
        serve_delta = serve_total - prev_total
        slow_delta = serve_delta - (serve_fast - prev_fast)
        row: Dict[str, float] = {
            "t_start_s": record.t_start_s,
            "t_end_s": record.t_end_s,
            "samples": float(record.samples),
            "gpu_samples": gpu_samples,
            "nodes": float(len(record.node_ids)),
            "energy_j": record.energy_j,
            "gpu_hours": record.gpu_hours,
            "max_gpu_power_w": record.max_gpu_power_w,
            "over_limit_samples": float(record.over_limit_samples),
            "cap_w": float("nan") if cap is None else float(cap),
            "published_version": (
                float("nan") if version is None else float(version)
            ),
            "samples_in_delta": float(samples_in),
            "late_dropped_delta": float(late),
            "duplicates_delta": float(dup),
            "alerts_firing": float(firing),
            "alert_transitions_delta": float(transitions),
            "energy_budget_j": budget_j,
            "energy_over_budget_j": over_j,
            "serve_requests": serve_delta,
            "serve_slow_requests": slow_delta,
        }
        for i, key in enumerate(_REGION_KEYS):
            row[f"region_energy_{key}_j"] = float(
                record.region_energy_j[i]
            )
            row[f"region_gpu_hours_{key}"] = float(
                record.region_gpu_hours[i]
            )
        self.store.append_row(row)
        values = self.evaluator.observe(
            record.t_start_s, record.t_end_s, row
        )
        self.slo_alerts.evaluate(values, record.t_end_s)

    def finalize(self) -> "History":
        """End of stream: flush tails and the manifest to disk."""
        if self.store is not None:
            self.store.sync()
        return self

    # -- views --------------------------------------------------------------------

    @property
    def windows_recorded(self) -> int:
        return self._index

    def metric_values(self) -> Dict[str, float]:
        """``history_*`` + ``slo_*`` gauges for the metric-source hook."""
        values: Dict[str, float] = {}
        if self.store is not None:
            values.update(self.store.metric_values())
        values.update(self.evaluator.last_values)
        values["slo_alerts_firing"] = float(
            len(self.slo_alerts.firing())
        )
        return values

    def slo_rows(self) -> List[dict]:
        """Per-SLO dashboard rows: budget left, burn rates, states."""
        states = {
            row["name"]: row["state"]
            for row in self.slo_alerts.rule_states()
        }
        values = self.evaluator.last_values
        out = []
        for slo in self.slos:
            out.append({
                "name": slo.name,
                "objective": slo.objective,
                "budget_remaining": values.get(
                    f"slo_{slo.name}_budget_remaining", 1.0
                ),
                "burn_fast": values.get(
                    f"slo_{slo.name}_burn_fast", 0.0
                ),
                "burn_slow": values.get(
                    f"slo_{slo.name}_burn_slow", 0.0
                ),
                "fast_state": states.get(
                    f"slo_{slo.name}_fast_burn", "inactive"
                ),
                "slow_state": states.get(
                    f"slo_{slo.name}_slow_burn", "inactive"
                ),
            })
        return out

    def summary(self) -> dict:
        doc = {
            "windows_recorded": self._index,
            "slos": self.slo_rows(),
            "slo_transitions": self.slo_alerts.transitions,
        }
        if self.store is not None:
            doc["store"] = self.store.summary()
        return doc

    def events(self) -> List[dict]:
        """The SLO alert transition timeline (event-time ordered)."""
        return list(self.slo_alerts.history)

    def timeline(self) -> str:
        return render_events(self.events(), title="SLO transitions:")

    def reader_view(self) -> Optional["HistoryView"]:
        """Freeze the readable row counts for a published serve view."""
        if self.store is None:
            return None
        return HistoryView(
            self.store,
            rows=tuple(
                self.store.rows(level)
                for level in range(self.store.n_levels)
            ),
            slo_rows=self.slo_rows(),
        )


class HistoryView:
    """A frozen read handle: store + per-level row counts at publish.

    The store is append-only (and live planes never compact/gc it), so
    bounding every read to the frozen row counts makes each published
    view's answers stable however far ingest advances afterwards —
    the same immutability contract as the rest of
    :class:`~repro.serve.cache.ServeView`.
    """

    def __init__(self, store, *, rows, slo_rows) -> None:
        self.store = store
        self.rows = rows
        self.slo_rows = slo_rows

    def select(self, series, t0, t1, step, *, agg=None, level=None):
        lvl = (
            auto_level(self.store, float(step))
            if level is None else int(level)
        )
        max_row = (
            self.rows[lvl] if 0 <= lvl < len(self.rows) else None
        )
        return select(
            self.store, series, t0, t1, step,
            agg=agg, level=lvl, max_row=max_row,
        )

    def span(self):
        """(first, last) window start of the *frozen* level-0 rows."""
        n = self.rows[0] if self.rows else 0
        if n == 0:
            return None
        first = self.store.column_slice("t_start_s", 0, 0, 1)[0]
        last = self.store.column_slice("t_start_s", 0, n - 1, n)[0]
        return float(first), float(last)

    def series_doc(self) -> dict:
        store = self.store
        span = self.span()
        return {
            "series": [
                {"name": n, "agg": a} for n, a in store.columns
            ],
            "window_s": store.window_s,
            "t_first_s": None if span is None else span[0],
            "t_last_s": None if span is None else span[1],
            "levels": [
                {
                    "level": level,
                    "span_s": store.level_span_s(level),
                    "rows": self.rows[level],
                }
                for level in range(store.n_levels)
            ],
            "slos": self.slo_rows,
        }
