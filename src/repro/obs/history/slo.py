"""SLOs and multi-window burn-rate alerting over the history store.

The paper's 5 % slowdown/energy budget is treated as an **error
budget**: each :class:`SLO` declares an objective (the fraction of
"good" that must hold over the long window) and two stored series —
``bad`` over ``total`` is the error ratio.  The burn rate is

    ``burn = (bad / total) / (1 - objective)``

i.e. how many multiples of the sustainable error spend the fleet is
currently burning; ``burn == 1`` exhausts the budget exactly at the
end of the long window.

Alerting follows the standard multi-window, multi-burn-rate scheme:
a **fast** rule (5 m *and* 1 h windows both above 14.4 — a page:
2 % of a 3-day budget gone within the hour) and a **slow** rule
(6 h *and* 3 d both above 6 — a ticket).  The two-window AND is
encoded as ``min(burn_short, burn_long)`` so each rule stays a plain
``threshold`` :class:`~repro.obs.health.rules.RuleSpec` and the
existing :class:`~repro.obs.health.rules.AlertEngine` state machines
evaluate it unchanged, in event time.

:class:`SLOEvaluator` keeps per-series cumulative sums keyed by window
start, so each evaluation is two binary searches per window — O(log n)
per sealed window, no store reads — and the transition timeline is a
pure function of the window sequence: reruns and re-chunked ingest
reproduce it exactly (the ``ext_slo`` experiment's acceptance check).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..health.rules import RuleSpec
from .store import HistoryStore


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate rule: short + long trailing windows AND'd."""

    short_s: float
    long_s: float
    threshold: float


#: The standard fast/slow pairs (Google SRE workbook table).
FAST_BURN = BurnWindow(short_s=300.0, long_s=3_600.0, threshold=14.4)
SLOW_BURN = BurnWindow(short_s=21_600.0, long_s=259_200.0, threshold=6.0)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over two stored history series."""

    name: str
    objective: float                 # e.g. 0.999
    bad_series: str
    total_series: str
    summary: str = ""
    fast: BurnWindow = field(default=FAST_BURN)
    slow: BurnWindow = field(default=SLOW_BURN)

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


def default_slos() -> List[SLO]:
    """The shipped SLOs over the standard history schema.

    * ``cap_violation`` — at most 0.1 % of GPU samples above the
      hardware power limit (the paper's cap-compliance guarantee);
    * ``energy_budget`` — at most 5 % of GPU-seconds' worth of energy
      above the per-GCD power budget (the slowdown/energy budget spent
      at a controlled rate);
    * ``serve_latency`` — at most 1 % of control-plane requests slower
      than the fast-bucket bound (5 ms, the ``bench_serve`` p99 SLO).
    """
    return [
        SLO(
            name="cap_violation",
            objective=0.999,
            bad_series="over_limit_samples",
            total_series="gpu_samples",
            summary="GPU samples above the hardware power limit",
        ),
        SLO(
            name="energy_budget",
            objective=0.95,
            bad_series="energy_over_budget_j",
            total_series="energy_budget_j",
            summary="fleet energy spent above the power budget",
        ),
        SLO(
            name="serve_latency",
            objective=0.99,
            bad_series="serve_slow_requests",
            total_series="serve_requests",
            summary="control-plane requests slower than 5 ms",
        ),
    ]


def slo_rules(slos: Iterable[SLO]) -> List[RuleSpec]:
    """Threshold rules over the ``slo_*`` gauges, one fast + one slow.

    Evaluated by the standard :class:`AlertEngine` state machines; the
    min() encoding of the two-window AND means a rule's metric only
    crosses its threshold when *both* windows burn too fast.
    """
    rules: List[RuleSpec] = []
    for slo in slos:
        rules.append(RuleSpec(
            name=f"slo_{slo.name}_fast_burn",
            metric=f"slo_{slo.name}_burn_fast",
            kind="threshold",
            op=">=",
            value=slo.fast.threshold,
            for_s=0.0,
            severity="critical",
            summary=(
                f"{slo.name}: error budget burning >= "
                f"{slo.fast.threshold:g}x over 5m and 1h"
                + (f" ({slo.summary})" if slo.summary else "")
            ),
        ))
        rules.append(RuleSpec(
            name=f"slo_{slo.name}_slow_burn",
            metric=f"slo_{slo.name}_burn_slow",
            kind="threshold",
            op=">=",
            value=slo.slow.threshold,
            for_s=0.0,
            severity="warning",
            summary=(
                f"{slo.name}: error budget burning >= "
                f"{slo.slow.threshold:g}x over 6h and 3d"
                + (f" ({slo.summary})" if slo.summary else "")
            ),
        ))
    return rules


class SLOEvaluator:
    """Incremental burn-rate evaluation over the live window stream.

    Feed every sealed window's history row through :meth:`observe`; it
    returns the ``slo_*`` gauge values as of that window's end.  State
    is per-series cumulative sums (O(windows) floats), evaluation is
    O(log windows) — independent of the store, so the evaluator works
    identically for in-memory and on-disk histories.
    """

    def __init__(self, slos: Optional[Iterable[SLO]] = None) -> None:
        self.slos: List[SLO] = (
            list(slos) if slos is not None else default_slos()
        )
        names = sorted(
            {s.bad_series for s in self.slos}
            | {s.total_series for s in self.slos}
        )
        self._t_start: List[float] = []
        self._cum: Dict[str, List[float]] = {n: [0.0] for n in names}
        self.last_values: Dict[str, float] = {}

    def observe(
        self, t_start_s: float, t_end_s: float,
        row: Mapping[str, float],
    ) -> Dict[str, float]:
        """Fold one window's row; return gauges as of ``t_end_s``."""
        self._t_start.append(float(t_start_s))
        for name, cum in self._cum.items():
            cum.append(cum[-1] + float(row.get(name, 0.0)))
        now = float(t_end_s)
        values: Dict[str, float] = {}
        for slo in self.slos:
            fast = min(
                self._burn(slo, now, slo.fast.short_s),
                self._burn(slo, now, slo.fast.long_s),
            )
            slow = min(
                self._burn(slo, now, slo.slow.short_s),
                self._burn(slo, now, slo.slow.long_s),
            )
            spent = self._burn(slo, now, slo.slow.long_s) * (
                self._window_len(now, slo.slow.long_s)
                / slo.slow.long_s
            )
            values[f"slo_{slo.name}_burn_fast"] = fast
            values[f"slo_{slo.name}_burn_slow"] = slow
            values[f"slo_{slo.name}_budget_remaining"] = 1.0 - spent
        self.last_values = values
        return values

    # -- internals ----------------------------------------------------------------

    def _window_sum(self, name: str, now: float, window_s: float) -> float:
        idx = bisect_left(self._t_start, now - window_s)
        cum = self._cum[name]
        return cum[-1] - cum[idx]

    def _window_len(self, now: float, window_s: float) -> float:
        """Event-time span actually covered by a trailing window."""
        if not self._t_start:
            return 0.0
        return min(window_s, now - self._t_start[0])

    def _burn(self, slo: SLO, now: float, window_s: float) -> float:
        total = self._window_sum(slo.total_series, now, window_s)
        if total <= 0:
            return 0.0
        bad = self._window_sum(slo.bad_series, now, window_s)
        return (bad / total) / slo.error_budget


def replay(
    store: HistoryStore,
    slos: Optional[Iterable[SLO]] = None,
    *,
    block_rows: int = 8192,
) -> SLOEvaluator:
    """Rebuild an evaluator from a store's level-0 rows (offline SLOs).

    Streams bounded row blocks, so it works on stores larger than
    memory; the resulting evaluator state (and therefore every gauge
    value) matches the live one that observed the same windows.
    """
    ev = SLOEvaluator(slos)
    names = [n for n, _ in store.columns]
    rows = store.rows(0)
    for r0 in range(0, rows, block_rows):
        block = store._rows_block(0, r0, min(r0 + block_rows, rows))
        for i in range(block.shape[0]):
            row = dict(zip(names, block[i]))
            ev.observe(row["t_start_s"], row["t_end_s"], row)
    return ev
