"""The long-horizon history store: out-of-core columnar retention.

``HistoryStore`` persists an append-only stream of per-window rows
(one float64 value per named column) into chunked struct-of-arrays
segments — each segment a plain ``.npy`` of shape ``(n_cols, rows)``,
C-order, so one column of one segment is a contiguous byte range — plus
a small JSON manifest.  Reads go through ``np.load(mmap_mode="r")``
slices: a range query over a 90-day store touches only the pages of the
columns and rows it asks for, so resident memory stays bounded however
large the campaign grows (the ``history-gate`` CI job enforces an RSS
ceiling while ingesting a store whose column bytes exceed it).

Rollups
-------
On top of level 0 (one row per sealed window) the store maintains
deterministic multi-resolution rollup levels: with the default factors
``(20, 12)`` and 15 s windows, level 1 is 5 min buckets and level 2 is
1 h buckets.  Every level-k bucket is folded **directly from its
constituent level-0 rows** through the one shared :func:`fold_values`
fold — never from intermediate levels, never from running sums — so a
bucket's aggregate is bitwise-equal to an exact refold of its level-0
rows by construction, whatever the segmentation or arrival chunking
(the same canonical-fold discipline as ``merge_cubes``; asserted by
:func:`repro.obs.history.query.verify_rollups` in tests and CI).

Determinism: appends carry event-time rows only — no wall clock, no
randomness — so the same window sequence produces byte-identical
segments and manifest, whatever ``chunk_rows`` sliced them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import HistoryError

#: Rows per stored segment (level 0: ~34 minutes of 15 s windows per
#: default segment; a 90-day campaign is ~127 level-0 segments).
DEFAULT_CHUNK_ROWS = 4096

#: Rollup bucket factors relative to level 0: with 15 s windows,
#: 20 -> 5 min (level 1) and 20*12 -> 1 h (level 2).
DEFAULT_ROLLUP_FACTORS = (20, 12)

#: Column aggregations the fold understands.
AGGS = ("sum", "min", "max", "last")

MANIFEST_NAME = "manifest.json"
_FORMAT = 1


def fold_values(values: np.ndarray, agg: str) -> float:
    """The one canonical fold: aggregate a 1-D float64 value run.

    Every rollup bucket and every refold check funnels through this
    function, which is what makes "rollup equals refold" a bitwise
    identity rather than a tolerance test.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        raise HistoryError("cannot fold an empty value run")
    if agg == "sum":
        return float(np.add.reduce(values))
    if agg == "min":
        return float(np.minimum.reduce(values))
    if agg == "max":
        return float(np.maximum.reduce(values))
    if agg == "last":
        return float(values[-1])
    raise HistoryError(
        f"unknown aggregation {agg!r} (expected one of {', '.join(AGGS)})"
    )


def _span_rows(factors: Sequence[int], level: int) -> int:
    """Level-0 rows per level-``level`` bucket."""
    span = 1
    for f in factors[:level]:
        span *= int(f)
    return span


class _Level:
    """Mutable state of one resolution level."""

    __slots__ = (
        "level", "span_rows", "dropped_rows", "segments",
        "tail_blocks", "tail_rows", "_tail_cache",
    )

    def __init__(self, level: int, span_rows: int) -> None:
        self.level = level
        self.span_rows = span_rows
        #: Rows garbage-collected off the front (global index offset).
        self.dropped_rows = 0
        #: ``{"file": str|None, "rows": int, "t0": float|None,
        #:   "t1": float|None, "array": ndarray|None}`` per segment.
        self.segments: List[dict] = []
        self.tail_blocks: List[np.ndarray] = []
        self.tail_rows = 0
        self._tail_cache: Optional[np.ndarray] = None

    @property
    def stored_rows(self) -> int:
        return sum(seg["rows"] for seg in self.segments)

    @property
    def rows(self) -> int:
        """Readable rows (stored segments + unflushed tail)."""
        return self.stored_rows + self.tail_rows

    @property
    def seen_rows(self) -> int:
        """Global rows ever appended, including gc-dropped ones."""
        return self.dropped_rows + self.rows

    def tail_array(self) -> Optional[np.ndarray]:
        if not self.tail_blocks:
            return None
        if self._tail_cache is None or (
            self._tail_cache.shape[0] != self.tail_rows
        ):
            self._tail_cache = np.concatenate(self.tail_blocks, axis=0)
        return self._tail_cache

    def push_tail(self, block: np.ndarray) -> None:
        self.tail_blocks.append(block)
        self.tail_rows += block.shape[0]
        self._tail_cache = None

    def take_tail(self, rows: int) -> np.ndarray:
        """Remove and return the first ``rows`` tail rows as one block."""
        tail = self.tail_array()
        out = tail[:rows]
        rest = tail[rows:]
        self.tail_blocks = [rest] if rest.shape[0] else []
        self.tail_rows -= rows
        self._tail_cache = rest if rest.shape[0] else None
        return out


class HistoryStore:
    """Append-only columnar history with deterministic rollups.

    ``columns`` maps each series name to its fold aggregation (one of
    :data:`AGGS`).  With ``dir=None`` the store is memory-resident (the
    live dashboard case); with a directory it writes memmap-readable
    ``.npy`` segments plus ``manifest.json`` and answers range queries
    out of core.  Both modes produce bitwise-identical column values
    (asserted in ``tests/obs/test_history.py``).
    """

    def __init__(
        self,
        columns: Union[Mapping[str, str], Sequence[Tuple[str, str]]],
        *,
        dir: Optional[Union[str, Path]] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        rollup_factors: Sequence[int] = DEFAULT_ROLLUP_FACTORS,
        window_s: Optional[float] = None,
        meta: Optional[dict] = None,
    ) -> None:
        pairs = (
            list(columns.items()) if isinstance(columns, Mapping)
            else [(str(n), str(a)) for n, a in columns]
        )
        if not pairs:
            raise HistoryError("history store needs at least one column")
        names = [n for n, _ in pairs]
        if len(set(names)) != len(names):
            raise HistoryError("duplicate column names")
        for name, agg in pairs:
            if agg not in AGGS:
                raise HistoryError(
                    f"column {name!r}: unknown aggregation {agg!r}"
                )
        if chunk_rows <= 0:
            raise HistoryError("chunk_rows must be positive")
        factors = tuple(int(f) for f in rollup_factors)
        if any(f < 2 for f in factors):
            raise HistoryError("rollup factors must be >= 2")
        self.columns: List[Tuple[str, str]] = pairs
        self._col_index = {n: i for i, (n, _) in enumerate(pairs)}
        self._aggs = [a for _, a in pairs]
        self.chunk_rows = int(chunk_rows)
        self.rollup_factors = factors
        self.window_s = None if window_s is None else float(window_s)
        self.meta = dict(meta or {})
        self.dir = None if dir is None else Path(dir)
        self._tix = self._col_index.get("t_start_s")
        self._levels = [
            _Level(k, _span_rows(factors, k))
            for k in range(len(factors) + 1)
        ]
        self._next_file_id = 0
        self._mmaps: Dict[str, np.ndarray] = {}
        self._last_t0: Optional[float] = None
        if self.dir is not None:
            if (self.dir / MANIFEST_NAME).exists():
                raise HistoryError(
                    f"{self.dir} already holds a history store; "
                    "use HistoryStore.open()"
                )
            self.dir.mkdir(parents=True, exist_ok=True)
        self._rebuild_pending()

    # -- construction from disk ---------------------------------------------------

    @classmethod
    def open(cls, dir: Union[str, Path]) -> "HistoryStore":
        """Open an existing on-disk store for reading and appending."""
        dir = Path(dir)
        path = dir / MANIFEST_NAME
        try:
            doc = json.loads(path.read_text())
        except OSError as exc:
            raise HistoryError(
                f"cannot read history manifest {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise HistoryError(f"bad JSON in {path}: {exc}") from exc
        if doc.get("format") != _FORMAT:
            raise HistoryError(
                f"unsupported history format {doc.get('format')!r}"
            )
        store = cls.__new__(cls)
        pairs = [(str(n), str(a)) for n, a in doc["columns"]]
        store.columns = pairs
        store._col_index = {n: i for i, (n, _) in enumerate(pairs)}
        store._aggs = [a for _, a in pairs]
        store.chunk_rows = int(doc["chunk_rows"])
        store.rollup_factors = tuple(int(f) for f in doc["rollup_factors"])
        store.window_s = (
            None if doc.get("window_s") is None else float(doc["window_s"])
        )
        store.meta = dict(doc.get("meta", {}))
        store.dir = dir
        store._tix = store._col_index.get("t_start_s")
        store._levels = [
            _Level(k, _span_rows(store.rollup_factors, k))
            for k in range(len(store.rollup_factors) + 1)
        ]
        store._next_file_id = int(doc.get("next_file_id", 0))
        store._mmaps = {}
        store._last_t0 = None
        for lv, spec in zip(store._levels, doc["levels"]):
            lv.dropped_rows = int(spec.get("dropped_rows", 0))
            for seg in spec["segments"]:
                lv.segments.append({
                    "file": seg["file"],
                    "rows": int(seg["rows"]),
                    "t0": seg.get("t0"),
                    "t1": seg.get("t1"),
                    "array": None,
                })
        store._rebuild_pending()
        if store._tix is not None and store.rows(0):
            store._last_t0 = float(
                store.column_slice(
                    "t_start_s", 0, store.rows(0) - 1, store.rows(0)
                )[0]
            )
        return store

    def _rebuild_pending(self) -> None:
        """Re-stage level-0 rows belonging to incomplete rollup buckets.

        Bucket alignment is global (bucket ``i`` covers level-0 rows
        ``[i*span, (i+1)*span)``), so after reopening a synced store the
        rows of any partially-filled bucket must be staged again before
        appends continue.  Those rows are by definition the newest
        level-0 rows, so they are always still stored.
        """
        self._pending: List[List[np.ndarray]] = [
            [] for _ in self._levels
        ]
        self._pending_rows = [0 for _ in self._levels]
        seen0 = self._levels[0].seen_rows
        for lv in self._levels[1:]:
            need = seen0 - lv.seen_rows * lv.span_rows
            if need < 0:
                raise HistoryError(
                    f"level {lv.level} is ahead of level 0 "
                    "(corrupt manifest)"
                )
            if need:
                rows0 = self.rows(0)
                block = self._rows_block(0, rows0 - need, rows0)
                self._pending[lv.level].append(block)
                self._pending_rows[lv.level] = need

    # -- appends ------------------------------------------------------------------

    def append_row(self, values: Mapping[str, float]) -> None:
        """Append one level-0 row (one value per declared column)."""
        row = np.empty((1, len(self.columns)), dtype=np.float64)
        try:
            for j, (name, _) in enumerate(self.columns):
                row[0, j] = float(values[name])
        except KeyError as exc:
            raise HistoryError(f"row is missing column {exc}") from exc
        self.append_batch(row)

    def append_batch(self, block: np.ndarray) -> None:
        """Append many level-0 rows at once: ``(rows, n_cols)`` float64."""
        block = np.ascontiguousarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != len(self.columns):
            raise HistoryError(
                f"batch shape {block.shape} does not match "
                f"{len(self.columns)} columns"
            )
        if block.shape[0] == 0:
            return
        if self._tix is not None:
            t = block[:, self._tix]
            if np.any(np.diff(t) < 0) or (
                self._last_t0 is not None and t[0] < self._last_t0
            ):
                raise HistoryError(
                    "t_start_s must be non-decreasing across appends"
                )
            self._last_t0 = float(t[-1])
        self._levels[0].push_tail(block)
        self._flush_level(0)
        for lv in self._levels[1:]:
            self._roll_into(lv, block)

    def _roll_into(self, lv: _Level, block: np.ndarray) -> None:
        """Fold any level-0 buckets this block completed into ``lv``."""
        k = lv.level
        self._pending[k].append(block)
        self._pending_rows[k] += block.shape[0]
        span = lv.span_rows
        if self._pending_rows[k] < span:
            return
        staged = (
            self._pending[k][0] if len(self._pending[k]) == 1
            else np.concatenate(self._pending[k], axis=0)
        )
        n_buckets = staged.shape[0] // span
        out = np.empty(
            (n_buckets, len(self.columns)), dtype=np.float64
        )
        for i in range(n_buckets):
            bucket = staged[i * span:(i + 1) * span]
            for j, agg in enumerate(self._aggs):
                out[i, j] = fold_values(bucket[:, j], agg)
        rest = staged[n_buckets * span:]
        self._pending[k] = [rest] if rest.shape[0] else []
        self._pending_rows[k] = rest.shape[0]
        lv.push_tail(out)
        self._flush_level(k)

    # -- segment management -------------------------------------------------------

    def _flush_level(self, level: int, *, force: bool = False) -> None:
        lv = self._levels[level]
        while lv.tail_rows >= self.chunk_rows:
            self._emit_segment(lv, lv.take_tail(self.chunk_rows))
        if force and lv.tail_rows:
            self._emit_segment(lv, lv.take_tail(lv.tail_rows))

    def _make_segment(self, level: int, block: np.ndarray) -> dict:
        # (n_cols, rows) C-order: one column of one segment is one
        # contiguous byte range, the unit a memmap range query touches.
        cols = np.ascontiguousarray(block.T)
        t0 = t1 = None
        if self._tix is not None and block.shape[0]:
            t0 = float(block[0, self._tix])
            t1 = float(block[-1, self._tix])
        seg = {"rows": int(block.shape[0]), "t0": t0, "t1": t1}
        if self.dir is None:
            seg["file"] = None
            seg["array"] = cols
        else:
            name = f"L{level}-{self._next_file_id:06d}.npy"
            self._next_file_id += 1
            np.save(self.dir / name, cols)
            seg["file"] = name
            seg["array"] = None
        return seg

    def _emit_segment(self, lv: _Level, block: np.ndarray) -> None:
        lv.segments.append(self._make_segment(lv.level, block))

    def _seg_array(self, seg: dict) -> np.ndarray:
        if seg["array"] is not None:
            return seg["array"]
        path = str(self.dir / seg["file"])
        arr = self._mmaps.get(path)
        if arr is None:
            arr = np.load(path, mmap_mode="r")
            self._mmaps[path] = arr
        return arr

    def sync(self) -> "HistoryStore":
        """Flush tails into segments and (on disk) rewrite the manifest."""
        for lv in self._levels:
            self._flush_level(lv.level, force=True)
        if self.dir is not None:
            self._write_manifest()
        return self

    def _write_manifest(self) -> None:
        doc = {
            "format": _FORMAT,
            "columns": [[n, a] for n, a in self.columns],
            "rollup_factors": list(self.rollup_factors),
            "chunk_rows": self.chunk_rows,
            "window_s": self.window_s,
            "meta": self.meta,
            "next_file_id": self._next_file_id,
            "levels": [
                {
                    "level": lv.level,
                    "span_rows": lv.span_rows,
                    "dropped_rows": lv.dropped_rows,
                    "rows": lv.stored_rows,
                    "segments": [
                        {
                            "file": seg["file"],
                            "rows": seg["rows"],
                            "t0": seg["t0"],
                            "t1": seg["t1"],
                        }
                        for seg in lv.segments
                    ],
                }
                for lv in self._levels
            ],
        }
        path = self.dir / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n")
        tmp.replace(path)

    def close(self) -> None:
        """Drop memmap handles (idempotent; reads reopen lazily)."""
        self._mmaps.clear()

    # -- reads --------------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    def level_span_rows(self, level: int) -> int:
        return self._levels[level].span_rows

    def level_span_s(self, level: int) -> Optional[float]:
        if self.window_s is None:
            return None
        return self._levels[level].span_rows * self.window_s

    def rows(self, level: int) -> int:
        return self._levels[level].rows

    def dropped_rows(self, level: int) -> int:
        return self._levels[level].dropped_rows

    def _check_series(self, name: str) -> int:
        j = self._col_index.get(name)
        if j is None:
            raise HistoryError(
                f"unknown series {name!r} "
                f"(have: {', '.join(n for n, _ in self.columns)})"
            )
        return j

    def series_agg(self, name: str) -> str:
        return self._aggs[self._check_series(name)]

    def column_slice(
        self, name: str, level: int, r0: int, r1: int
    ) -> np.ndarray:
        """Column values for local rows ``[r0, r1)`` — a float64 copy.

        Disk-backed stores gather via memmap slices: only the pages of
        this column in the overlapped segments are touched.
        """
        j = self._check_series(name)
        lv = self._levels[level]
        r0 = max(0, int(r0))
        r1 = min(lv.rows, int(r1))
        if r1 <= r0:
            return np.empty(0, dtype=np.float64)
        pieces: List[np.ndarray] = []
        offset = 0
        for seg in lv.segments:
            rows = seg["rows"]
            a, b = max(r0 - offset, 0), min(r1 - offset, rows)
            if a < b:
                pieces.append(self._seg_array(seg)[j, a:b])
            offset += rows
            if offset >= r1:
                break
        if offset < r1:
            tail = lv.tail_array()
            a, b = max(r0 - offset, 0), r1 - offset
            pieces.append(tail[a:b, j])
        out = np.concatenate(pieces) if pieces else np.empty(0)
        return np.ascontiguousarray(out, dtype=np.float64)

    def _rows_block(self, level: int, r0: int, r1: int) -> np.ndarray:
        """All columns for local rows ``[r0, r1)`` as ``(rows, n_cols)``."""
        lv = self._levels[level]
        r0 = max(0, int(r0))
        r1 = min(lv.rows, int(r1))
        if r1 <= r0:
            return np.empty((0, len(self.columns)))
        pieces: List[np.ndarray] = []
        offset = 0
        for seg in lv.segments:
            rows = seg["rows"]
            a, b = max(r0 - offset, 0), min(r1 - offset, rows)
            if a < b:
                pieces.append(np.asarray(self._seg_array(seg)[:, a:b]).T)
            offset += rows
            if offset >= r1:
                break
        if offset < r1:
            tail = lv.tail_array()
            pieces.append(tail[max(r0 - offset, 0):r1 - offset])
        return np.ascontiguousarray(
            np.concatenate(pieces, axis=0), dtype=np.float64
        )

    def _locate_time(self, level: int, t: float) -> int:
        """First local row of ``level`` with ``t_start_s >= t``."""
        if self._tix is None:
            raise HistoryError("store has no t_start_s column")
        lv = self._levels[level]
        offset = 0
        for seg in lv.segments:
            if seg["t1"] is not None and seg["t1"] >= t:
                col = self._seg_array(seg)[self._tix]
                return offset + int(np.searchsorted(col, t, side="left"))
            offset += seg["rows"]
        tail = lv.tail_array()
        if tail is not None:
            col = tail[:, self._tix]
            return offset + int(np.searchsorted(col, t, side="left"))
        return offset

    def row_range(
        self, level: int, t0: float, t1: float
    ) -> Tuple[int, int]:
        """Local rows whose window start falls in ``[t0, t1)``."""
        return self._locate_time(level, t0), self._locate_time(level, t1)

    def time_span(self) -> Optional[Tuple[float, float]]:
        """(first window start, last window start) of readable level 0."""
        if self._tix is None or self.rows(0) == 0:
            return None
        first = self.column_slice("t_start_s", 0, 0, 1)[0]
        last = self.column_slice(
            "t_start_s", 0, self.rows(0) - 1, self.rows(0)
        )[0]
        return float(first), float(last)

    # -- maintenance --------------------------------------------------------------

    def compact(self) -> dict:
        """Merge ragged segments into full ``chunk_rows`` segments.

        Repeated ``sync()`` calls (one per live dashboard refresh, say)
        leave short tail segments behind; compaction rewrites each level
        into maximal uniform segments.  Column values are untouched —
        the rewrite is bitwise-invisible to every read (asserted in
        tests) — and memory stays bounded at one chunk per step.
        """
        if self.dir is None:
            return {"rewritten_segments": 0, "removed_files": 0}
        self.sync()
        rewritten = removed = 0
        for lv in self._levels:
            if not lv.segments or all(
                seg["rows"] == self.chunk_rows
                for seg in lv.segments[:-1]
            ):
                continue
            old = list(lv.segments)
            total = lv.stored_rows
            new_segments: List[dict] = []
            for r0 in range(0, total, self.chunk_rows):
                block = self._rows_block(
                    lv.level, r0, min(r0 + self.chunk_rows, total)
                )
                new_segments.append(self._make_segment(lv.level, block))
                rewritten += 1
            lv.segments = new_segments
            for seg in old:
                if seg["file"]:
                    path = self.dir / seg["file"]
                    self._mmaps.pop(str(path), None)
                    path.unlink(missing_ok=True)
                    removed += 1
        self._write_manifest()
        return {"rewritten_segments": rewritten, "removed_files": removed}

    def gc(self, keep_s: float) -> dict:
        """Drop whole segments older than ``keep_s`` before the frontier.

        Retention is segment-granular (cheap, no rewrite): a segment is
        dropped only when every row in it starts before
        ``last_t0 - keep_s``.  Rollup levels gc independently; refold
        verification skips buckets whose level-0 rows are gone.
        """
        if keep_s < 0:
            raise HistoryError("keep_s must be >= 0")
        span = self.time_span()
        if span is None:
            return {"dropped_rows": {}, "removed_files": 0}
        cutoff = span[1] - keep_s
        removed = 0
        dropped: Dict[int, int] = {}
        for lv in self._levels:
            n = 0
            while lv.segments:
                seg = lv.segments[0]
                if seg["t1"] is None or seg["t1"] >= cutoff:
                    break
                lv.segments.pop(0)
                lv.dropped_rows += seg["rows"]
                n += seg["rows"]
                if seg["file"]:
                    path = self.dir / seg["file"]
                    self._mmaps.pop(str(path), None)
                    path.unlink(missing_ok=True)
                    removed += 1
            if n:
                dropped[lv.level] = n
        if self.dir is not None:
            self._write_manifest()
        return {"dropped_rows": dropped, "removed_files": removed}

    # -- views --------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Stored column bytes across all levels (segments + tails)."""
        per_row = 8 * len(self.columns)
        return per_row * sum(lv.rows for lv in self._levels)

    def segment_count(self) -> int:
        return sum(len(lv.segments) for lv in self._levels)

    def summary(self) -> dict:
        """JSON-ready description (``repro obs history info``)."""
        span = self.time_span()
        return {
            "dir": None if self.dir is None else str(self.dir),
            "columns": len(self.columns),
            "window_s": self.window_s,
            "chunk_rows": self.chunk_rows,
            "rollup_factors": list(self.rollup_factors),
            "bytes": self.total_bytes(),
            "t_first_s": None if span is None else span[0],
            "t_last_s": None if span is None else span[1],
            "levels": [
                {
                    "level": lv.level,
                    "span_rows": lv.span_rows,
                    "span_s": self.level_span_s(lv.level),
                    "rows": lv.rows,
                    "dropped_rows": lv.dropped_rows,
                    "segments": len(lv.segments),
                }
                for lv in self._levels
            ],
        }

    def metric_values(self) -> Dict[str, float]:
        return {
            "history_windows_total": float(self._levels[0].seen_rows),
            "history_rows_resident": float(
                sum(lv.rows for lv in self._levels)
            ),
            "history_segments": float(self.segment_count()),
            "history_bytes": float(self.total_bytes()),
        }
