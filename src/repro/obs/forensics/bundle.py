"""Self-contained JSON forensic bundles for incidents.

Two artifact shapes:

* ``incidents.json`` (:func:`forensics_doc`) — the whole forensic
  state of one run: every incident, the resident flight-recorder
  records, a metrics snapshot, active alerts, and run-manifest-style
  provenance (package versions + git revision).  Written by
  ``ext_incidents`` and ``repro stream/serve`` under ``--obs``.
* one bundle per incident (:func:`build_bundle`) — the incident plus
  the recorder slice spanning its window range (padded one window each
  side), carrying the same provenance block, so a single file explains
  a single episode.  This is what ``repro obs incidents export`` writes
  and CI uploads.

Bundles are deterministic given the run: serialization is sorted-key
JSON and every field traces back to event-time state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ...errors import ForensicsError
from ..manifest import _git_revision, _package_versions

SCHEMA_VERSION = 1


def _provenance() -> dict:
    return {
        "versions": _package_versions(),
        "git": _git_revision(),
    }


def forensics_doc(
    forensics,
    *,
    command: Optional[str] = None,
    registry=None,
    monitor=None,
) -> dict:
    """The full forensic state of one run as a JSON-ready document."""
    metrics_text = registry.to_prometheus() if registry is not None else None
    alerts = monitor.to_alerts_dict() if monitor is not None else None
    event_log = getattr(forensics, "event_log", None)
    return {
        "schema": SCHEMA_VERSION,
        "kind": "forensics",
        "command": command,
        "provenance": _provenance(),
        "summary": forensics.summary(),
        "incidents": [
            i.to_dict(top_k=forensics.incidents.top_k)
            for i in forensics.incidents.incidents
        ],
        "records": [r.to_dict() for r in forensics.recorder.records],
        # Window-correlated log records only: their per-event occurrence
        # ids are rerun- and chunking-invariant, so the slice a bundle
        # embeds is exactly reproducible (cadence-driven records, e.g.
        # snapshot publishes, are deliberately excluded).
        "logs": (
            None if event_log is None
            else [dict(r) for r in event_log.records()
                  if r.get("window") is not None]
        ),
        "metrics": metrics_text,
        "alerts": alerts,
    }


def build_bundle(doc: dict, incident_id: str, *, pad: int = 1) -> dict:
    """One incident's self-contained bundle, sliced from a full doc."""
    incidents = {i["id"]: i for i in doc.get("incidents", [])}
    incident = incidents.get(incident_id)
    if incident is None:
        raise ForensicsError(
            f"no incident {incident_id!r} "
            f"(have: {', '.join(sorted(incidents)) or 'none'})"
        )
    first = incident["first_window"] - pad
    last = incident["last_window"] + pad
    records = [
        r for r in doc.get("records", [])
        if first <= r["index"] <= last
    ]
    logs = doc.get("logs")
    return {
        "schema": SCHEMA_VERSION,
        "kind": "incident_bundle",
        "command": doc.get("command"),
        "provenance": doc.get("provenance", _provenance()),
        "incident": incident,
        "records": records,
        "logs": (
            None if logs is None
            else [r for r in logs if first <= r.get("window", -1) <= last]
        ),
        "metrics": doc.get("metrics"),
        "alerts": doc.get("alerts"),
    }


def render_doc(doc: dict) -> str:
    """Canonical serialization (sorted keys, newline-terminated)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def load_forensics(path) -> dict:
    """Read an ``incidents.json`` (or bundle) back; validates the shape."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ForensicsError(
            f"cannot read forensics doc {path}: {exc}"
        ) from exc
    if not isinstance(doc, dict) or (
        "incidents" not in doc and "incident" not in doc
    ):
        raise ForensicsError(f"{path} is not a forensics document")
    return doc


def write_forensics_artifacts(
    out_dir,
    forensics,
    *,
    command: Optional[str] = None,
    registry=None,
    monitor=None,
    bundles: bool = True,
) -> Dict[str, List[Path]]:
    """Write ``incidents.json`` plus one bundle per incident.

    Returns ``{"incidents": [path], "bundles": [paths...]}``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = forensics_doc(
        forensics, command=command, registry=registry, monitor=monitor,
    )
    incidents_path = out / "incidents.json"
    incidents_path.write_text(render_doc(doc))
    paths: Dict[str, List[Path]] = {
        "incidents": [incidents_path], "bundles": [],
    }
    if bundles:
        for incident in doc["incidents"]:
            bundle = build_bundle(doc, incident["id"])
            path = out / f"incident_{incident['id']}.json"
            path.write_text(render_doc(bundle))
            paths["bundles"].append(path)
    return paths
