"""Fleet flight recorder, anomaly detection, and incident forensics.

The forensic layer of the observability stack (metrics → traces →
profiles → health → **forensics**): it remembers what the fleet did
per sealed window, notices when a window misbehaves, and packages the
evidence.  :class:`Forensics` is the facade that ties the pieces to a
:class:`~repro.stream.engine.StreamEngine` via
``engine.attach_recorder(forensics)``:

* :class:`~.recorder.FlightRecorder` — bounded ring of per-window
  :class:`~.recorder.WindowRecord` entries (fleet/per-node energy, cap
  decision in force, ingest + alert deltas);
* :mod:`~.detectors` — window-level anomaly detectors (stragglers, cap
  violations, mode-mix shifts, energy regressions, publication stalls);
* :class:`~.incidents.IncidentEngine` — merges firings into event-time
  incidents with top-k node/job/mode attribution;
* :mod:`~.bundle` — self-contained JSON forensic bundles + timeline.

Everything is a pure read of the window stream: attaching a recorder
changes no analytic output bit (asserted in ``tests/obs/``), and the
whole layer is deterministic — same campaign, same findings, same
incident ids, whatever the delivery order or chunking.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ... import constants
from .bundle import (
    build_bundle,
    forensics_doc,
    load_forensics,
    render_doc,
    write_forensics_artifacts,
)
from .detectors import (
    CapViolationDetector,
    Detector,
    EnergyRegressionDetector,
    Finding,
    ModeMixDetector,
    PublicationStallDetector,
    StragglerDetector,
    default_detectors,
)
from .incidents import Incident, IncidentEngine, render_timeline
from .recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    WindowRecord,
    make_record,
)

__all__ = [
    "CapViolationDetector",
    "DEFAULT_CAPACITY",
    "Detector",
    "EnergyRegressionDetector",
    "Finding",
    "FlightRecorder",
    "Forensics",
    "Incident",
    "IncidentEngine",
    "ModeMixDetector",
    "PublicationStallDetector",
    "StragglerDetector",
    "WindowRecord",
    "build_bundle",
    "default_detectors",
    "forensics_doc",
    "load_forensics",
    "make_record",
    "render_doc",
    "render_timeline",
    "write_forensics_artifacts",
]

#: ``decision_feed() -> (cap, objective, published_version, frontier_s)``
DecisionFeed = Callable[
    [], Tuple[Optional[float], Optional[str], Optional[int], Optional[float]]
]


class Forensics:
    """Recorder + detectors + incident engine behind one observer.

    Attach to an engine with ``engine.attach_recorder(forensics)``;
    every sealed window then flows through :meth:`observe_window` in
    canonical fold order.  A control plane additionally wires
    :meth:`set_decision_feed` so records carry the decision in force,
    and :meth:`set_monitor` so records carry alert-state deltas.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        power_limit_w: float = constants.GCD_MAX_POWER_W,
        detectors: Optional[List[Detector]] = None,
        reference=None,
        tagger=None,
        monitor=None,
        merge_gap: int = 2,
        top_k: int = 5,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        self.recorder = FlightRecorder(capacity=capacity)
        self.detectors: List[Detector] = (
            detectors if detectors is not None
            else default_detectors(reference=reference)
        )
        self.incidents = IncidentEngine(
            merge_gap=merge_gap, top_k=top_k,
            tagger=tagger, interval_s=interval_s,
        )
        self.power_limit_w = float(power_limit_w)
        self.interval_s = float(interval_s)
        self.monitor = monitor
        self.event_log = None
        self._decision_feed: Optional[DecisionFeed] = None
        self._prev_samples_in = 0
        self._prev_late = 0
        self._prev_dup = 0
        self._prev_transitions = 0
        self._engine = None

    # -- wiring -------------------------------------------------------------------

    def bind_engine(self, engine) -> "Forensics":
        """Adopt the engine's stream geometry (called by attach_recorder)."""
        self._engine = engine
        self.interval_s = float(engine.buffer.interval_s)
        self.incidents.interval_s = self.interval_s
        for detector in self.detectors:
            detector.bind(window_s=float(engine.buffer.window_s))
        return self

    def set_decision_feed(self, feed: DecisionFeed) -> "Forensics":
        self._decision_feed = feed
        return self

    def set_monitor(self, monitor) -> "Forensics":
        self.monitor = monitor
        return self

    def set_tagger(self, tagger) -> "Forensics":
        self.incidents.tagger = tagger
        return self

    def set_event_log(self, event_log) -> "Forensics":
        """Wire a structured event log (:mod:`repro.obs.log`).

        Detector findings and incident open/resolve transitions then
        emit window-correlated records.  All three streams occur once
        per window in fold order, so their event ids — and the log
        slice a forensic bundle embeds — are invariant under rerun and
        re-chunking (asserted by ``ext_incidents``).
        """
        self.event_log = event_log
        self.incidents.on_event = self._incident_event
        return self

    def _incident_event(self, transition, incident) -> None:
        if transition == "open":
            severity = (
                "error" if incident.severity in ("critical", "page")
                else "warning"
            )
            self.event_log.emit(
                severity, "incident.open",
                incident.peak_summary or incident.detector,
                t_s=incident.t_start_s,
                window=incident.first_window,
                incident=incident.id,
                detector=incident.detector,
            )
        else:
            self.event_log.emit(
                "info", "incident.resolve",
                f"{incident.detector} quiet since window "
                f"{incident.last_window}",
                t_s=incident.t_end_s,
                window=incident.last_window,
                incident=incident.id,
                detector=incident.detector,
            )

    # -- the window observer ------------------------------------------------------

    def observe_window(self, window) -> None:
        """Record one sealed window, run detectors, fold incidents."""
        cap = objective = version = frontier = None
        if self._decision_feed is not None:
            cap, objective, version, frontier = self._decision_feed()
        samples_in = late = dup = 0
        if self._engine is not None:
            buf = self._engine.buffer
            samples_in = buf.samples_in - self._prev_samples_in
            late = buf.late_dropped - self._prev_late
            dup = buf.duplicates - self._prev_dup
            self._prev_samples_in = buf.samples_in
            self._prev_late = buf.late_dropped
            self._prev_dup = buf.duplicates
        firing = transitions = 0
        if self.monitor is not None:
            alerts = self.monitor.alerts
            firing = sum(
                1 for row in alerts.rule_states()
                if row["state"] == "firing"
            )
            transitions = alerts.transitions - self._prev_transitions
            self._prev_transitions = alerts.transitions
        record = make_record(
            window,
            index=self.recorder.windows_seen,
            interval_s=self.interval_s,
            power_limit_w=self.power_limit_w,
            cap=cap,
            objective=objective,
            published_version=version,
            published_frontier_s=frontier,
            samples_in_delta=samples_in,
            late_dropped_delta=late,
            duplicates_delta=dup,
            alerts_firing=firing,
            alert_transitions_delta=transitions,
        )
        self.recorder.append(record)
        findings: List[Finding] = []
        for detector in self.detectors:
            findings.extend(detector.observe(record, window))
        if self.event_log is not None:
            for f in findings:
                self.event_log.emit(
                    "warning", "forensics.finding", f.summary,
                    t_s=f.t_end_s, window=record.index,
                    node=(f.nodes[0] if f.nodes else None),
                    detector=f.detector, value=f.value,
                    threshold=f.threshold,
                )
        self.incidents.observe(record, findings, window=window)

    def finalize(self) -> "Forensics":
        """End of stream: resolve incidents that had gone quiet.

        Incidents still firing at the final window stay open (see
        :meth:`IncidentEngine.finalize`).
        """
        self.incidents.finalize(
            last_index=self.recorder.windows_seen - 1
        )
        return self

    # -- views --------------------------------------------------------------------

    def metric_values(self) -> Dict[str, float]:
        values = self.recorder.metric_values()
        values.update({
            "forensics_findings_total": float(
                self.incidents.findings_total
            ),
            "forensics_incidents_total": float(
                len(self.incidents.incidents)
            ),
            "forensics_incidents_open": float(
                len(self.incidents.open_incidents)
            ),
        })
        return values

    def summary(self) -> dict:
        return {
            "windows_recorded": self.recorder.windows_seen,
            "records_resident": len(self.recorder),
            "records_evicted": self.recorder.evicted,
            "findings_total": self.incidents.findings_total,
            "incidents_total": len(self.incidents.incidents),
            "incidents_open": len(self.incidents.open_incidents),
            "detectors": [d.name for d in self.detectors],
            "capacity": self.recorder.capacity,
        }

    def snapshot(self) -> dict:
        """Incidents + summary, JSON-ready (the ``/v1/incidents`` body)."""
        doc = self.incidents.snapshot()
        doc["summary"] = self.summary()
        return doc

    def serve_doc(self, *, pad: int = 1) -> dict:
        """The snapshot plus per-incident recorder slices.

        The shape the control plane freezes into a published
        :class:`~repro.serve.cache.ServeView`: the incident list for
        ``/v1/incidents`` and, per incident, the window records spanning
        its range (padded ``pad`` windows each side) so
        ``/v1/incidents/<id>`` serves a self-contained forensic slice.
        """
        doc = self.snapshot()
        records_by_id = {}
        for incident in self.incidents.incidents:
            records_by_id[incident.id] = [
                r.to_dict() for r in self.recorder.window_range(
                    incident.first_window - pad,
                    incident.last_window + pad,
                )
            ]
        doc["records_by_id"] = records_by_id
        if self.event_log is not None:
            doc["logs_by_id"] = {
                incident.id: self.event_log.window_slice(
                    incident.first_window - pad,
                    incident.last_window + pad,
                )
                for incident in self.incidents.incidents
            }
        return doc

    def timeline(self) -> str:
        return render_timeline(self.incidents.incidents)
