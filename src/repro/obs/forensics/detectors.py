"""Window-level anomaly detectors over sealed stream windows.

Each detector consumes the compacted :class:`~.recorder.WindowRecord`
(plus, transiently, the raw sealed window for sample-level evidence)
and emits zero or more :class:`Finding` rows.  Detectors run *only* on
sealed canonical windows — the deterministic unit of the streaming
contract — so a replayed campaign produces the identical finding
sequence whatever the arrival order or chunking was, and anything
delivery-dependent (publication lag) is derived from recorded state,
never the wall clock.

The shipped set mirrors what a fleet operator would watch on Frontier:

* :class:`StragglerDetector` — per-node mean power robust z-scores
  (median + MAD); an outlier node is drawing far more (or less) power
  than its peers in the same window.
* :class:`CapViolationDetector` — GPU samples above the vendor power
  limit (the 560 W GCD cap in the paper's Table I): hardware that is
  not honoring the enforced cap.
* :class:`ModeMixDetector` — the window's power-mode GPU-hour mix vs
  the pinned Table IV reference (total-variation distance), the
  windowed sibling of the cumulative health-layer drift detector.
* :class:`EnergyRegressionDetector` — fleet mean power vs a baseline
  window range: the whole campaign drawing anomalously more/less.
* :class:`PublicationStallDetector` — the control plane's published
  frontier falling behind the sealed frontier (cap decisions going
  stale while ingest advances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ... import constants
from ..health.drift import DriftReference, tv_distance
from .recorder import WindowRecord

#: Finding severities, in increasing order of operator urgency.
WARNING, CRITICAL = "warning", "critical"


@dataclass(frozen=True)
class Finding:
    """One detector firing on one sealed window."""

    detector: str
    severity: str
    window_index: int
    t_start_s: float
    t_end_s: float
    value: float            # the observed magnitude (z, fraction, ...)
    threshold: float
    summary: str
    nodes: Tuple[int, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "window_index": self.window_index,
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "value": self.value,
            "threshold": self.threshold,
            "summary": self.summary,
            "nodes": list(self.nodes),
        }


class Detector:
    """Base: a named check over ``(record, window)`` pairs."""

    name = "detector"
    severity = WARNING

    def bind(self, *, window_s: Optional[float] = None) -> None:
        """Hook for stream geometry (called when attached to an engine)."""

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        raise NotImplementedError

    def _finding(self, record: WindowRecord, *, value: float,
                 threshold: float, summary: str,
                 nodes: Tuple[int, ...] = ()) -> Finding:
        return Finding(
            detector=self.name,
            severity=self.severity,
            window_index=record.index,
            t_start_s=record.t_start_s,
            t_end_s=record.t_end_s,
            value=float(value),
            threshold=float(threshold),
            summary=summary,
            nodes=tuple(int(n) for n in nodes),
        )


class StragglerDetector(Detector):
    """Outlier nodes by robust per-node mean-power z-score.

    The scale is the median absolute deviation (scaled to sigma under
    normality); a relative floor keeps a near-degenerate fleet (every
    node drawing the same power) from turning rounding noise into
    infinite z-scores.
    """

    name = "straggler"
    severity = WARNING

    def __init__(self, *, z_threshold: float = 4.0,
                 min_nodes: int = 4, top_k: int = 8) -> None:
        self.z_threshold = float(z_threshold)
        self.min_nodes = int(min_nodes)
        self.top_k = int(top_k)

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        power = record.node_mean_power_w
        if len(power) < self.min_nodes:
            return []
        median = float(np.median(power))
        mad = float(np.median(np.abs(power - median)))
        scale = max(1.4826 * mad, 0.01 * abs(median), 1e-9)
        z = (power - median) / scale
        hot = np.abs(z) >= self.z_threshold
        if not hot.any():
            return []
        order = np.argsort(-np.abs(z), kind="stable")
        picked = [int(i) for i in order if hot[i]][: self.top_k]
        worst = picked[0]
        return [self._finding(
            record,
            value=float(np.abs(z[worst])),
            threshold=self.z_threshold,
            summary=(
                f"node {int(record.node_ids[worst])} mean power "
                f"{power[worst]:.0f} W vs fleet median {median:.0f} W "
                f"(|z|={abs(z[worst]):.1f}, {int(hot.sum())} outlier "
                f"node(s))"
            ),
            nodes=tuple(int(record.node_ids[i]) for i in picked),
        )]


class CapViolationDetector(Detector):
    """GPU samples above the vendor power limit (cap not honored)."""

    name = "cap_violation"
    severity = CRITICAL

    def __init__(self, *, min_samples: int = 1, top_k: int = 8) -> None:
        self.min_samples = int(min_samples)
        self.top_k = int(top_k)

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        if record.over_limit_samples < self.min_samples:
            return []
        nodes: Tuple[int, ...] = ()
        if window is not None and len(window):
            over = (window.gpu_power_w > record.power_limit_w).any(axis=1)
            ids, counts = np.unique(
                window.node_id[over], return_counts=True
            )
            order = np.argsort(-counts, kind="stable")[: self.top_k]
            nodes = tuple(int(ids[i]) for i in order)
        total = record.samples * constants.GPUS_PER_NODE
        frac = record.over_limit_samples / max(total, 1)
        return [self._finding(
            record,
            value=frac,
            threshold=0.0,
            summary=(
                f"{record.over_limit_samples} GPU sample(s) above "
                f"{record.power_limit_w:.0f} W "
                f"(peak {record.max_gpu_power_w:.0f} W, "
                f"{100.0 * frac:.2f} % of window)"
            ),
            nodes=nodes,
        )]


class ModeMixDetector(Detector):
    """Window mode mix vs the pinned Table IV reference (TV distance)."""

    name = "mode_mix"
    severity = WARNING

    def __init__(self, reference: Optional[DriftReference] = None, *,
                 tv_threshold: float = 0.25) -> None:
        self.reference = (
            reference if reference is not None else DriftReference.paper()
        )
        self.tv_threshold = float(tv_threshold)

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        hours = record.region_gpu_hours
        if hours.sum() <= 0:
            return []
        tv = tv_distance(hours, self.reference.gpu_hours_pct)
        if tv <= self.tv_threshold:
            return []
        shares = 100.0 * hours / hours.sum()
        return [self._finding(
            record,
            value=tv,
            threshold=self.tv_threshold,
            summary=(
                f"mode mix {'/'.join(f'{s:.0f}' for s in shares)} % vs "
                f"{self.reference.label}: TV distance {tv:.2f}"
            ),
        )]


class EnergyRegressionDetector(Detector):
    """Fleet mean power vs the median of a baseline window range.

    The first ``baseline_windows`` sealed windows pin the baseline;
    later windows deviating more than ``deviation_pct`` (either way)
    fire.  Baseline state is in *fold order*, so it is identical across
    deliveries of the same campaign.
    """

    name = "energy_regression"
    severity = WARNING

    def __init__(self, *, baseline_windows: int = 8,
                 deviation_pct: float = 25.0) -> None:
        self.baseline_windows = int(baseline_windows)
        self.deviation_pct = float(deviation_pct)
        self._baseline: List[float] = []

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        mean_w = record.mean_gpu_power_w
        if record.samples == 0 or mean_w <= 0:
            return []
        if len(self._baseline) < self.baseline_windows:
            self._baseline.append(mean_w)
            return []
        base = float(np.median(self._baseline))
        if base <= 0:
            return []
        deviation = 100.0 * (mean_w - base) / base
        if abs(deviation) <= self.deviation_pct:
            return []
        return [self._finding(
            record,
            value=deviation,
            threshold=self.deviation_pct,
            summary=(
                f"fleet mean GPU power {mean_w:.0f} W is "
                f"{deviation:+.1f} % vs the baseline {base:.0f} W "
                f"(first {self.baseline_windows} windows)"
            ),
        )]


class PublicationStallDetector(Detector):
    """The published cap decision lagging the sealed frontier.

    Only active when the record carries a publication feed (a control
    plane is attached); the lag is event time of the sealed window vs
    the event-time frontier of the *published* view, so it measures
    exactly what a polling power agent experiences: decisions computed
    from data ``lag`` seconds behind what the fleet already did.
    """

    name = "publication_stall"
    severity = CRITICAL

    def __init__(self, *, max_lag_windows: float = 3.0) -> None:
        self.max_lag_windows = float(max_lag_windows)
        self._window_s: Optional[float] = None

    def bind(self, *, window_s: Optional[float] = None) -> None:
        self._window_s = window_s

    def observe(self, record: WindowRecord, window) -> List[Finding]:
        if record.published_version is None:
            return []
        frontier = record.published_frontier_s
        lag = record.t_end_s - (frontier if frontier is not None else 0.0)
        window_s = self._window_s or max(
            record.t_end_s - record.t_start_s, 1.0
        )
        limit = self.max_lag_windows * window_s
        if lag <= limit:
            return []
        return [self._finding(
            record,
            value=lag,
            threshold=limit,
            summary=(
                f"published view v{record.published_version} is "
                f"{lag:.0f} s behind the sealed frontier "
                f"(> {self.max_lag_windows:g} windows of {window_s:.0f} s)"
            ),
        )]


def default_detectors(
    *,
    reference: Optional[DriftReference] = None,
    z_threshold: float = 4.0,
    tv_threshold: float = 0.25,
    deviation_pct: float = 25.0,
    max_lag_windows: float = 3.0,
) -> List[Detector]:
    """The shipped detector set, in deterministic evaluation order."""
    return [
        StragglerDetector(z_threshold=z_threshold),
        CapViolationDetector(),
        ModeMixDetector(reference, tv_threshold=tv_threshold),
        EnergyRegressionDetector(deviation_pct=deviation_pct),
        PublicationStallDetector(max_lag_windows=max_lag_windows),
    ]
