"""The flight recorder: a bounded ring of per-window fleet records.

Every sealed canonical window that flows past
:meth:`repro.stream.engine.StreamEngine.add_window_observer` is
compacted into one :class:`WindowRecord` — fleet and per-node energy,
the region (power-mode) split, the cap decision *in force* while the
window's samples were charged, ingest-counter deltas, and alert-state
transition deltas — and appended to a :class:`FlightRecorder` ring.

The ring is the evidence store behind incident forensics
(:mod:`repro.obs.forensics.incidents`): detectors read the records (and
the transient raw window) as they are produced, and an exported
incident bundle carries the slice of records spanning the incident so a
bad cap decision can be explained after the fact without replaying the
campaign.  Records are pure *reads* of the window — building one never
mutates pipeline state, which is what keeps recorder-enabled analytic
outputs bitwise-identical to plain runs (asserted in ``tests/obs/``).

Determinism: a record is a function of ``(window, decision snapshot,
counter deltas)`` only — no wall clock, no randomness — so replaying
the same campaign with the same delivery yields byte-identical record
dictionaries, which is what makes incident bundles diffable artifacts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ... import constants
from ...core.join import region_index
from ...errors import ForensicsError
from ...telemetry.schema import TelemetryChunk

#: Default ring capacity (windows).  At the 600 s windows the stream
#: experiments use, 512 records cover ~3.5 days of event time.
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class WindowRecord:
    """One sealed window, compacted for the ring.

    Arrays are per-node, aligned with ``node_ids`` (sorted unique node
    ids present in the window).  ``region_energy_j`` follows the
    canonical mode order (idle, MI, CI, PV — ``REGION_NAMES``).
    """

    index: int                       # 0-based fold order
    t_start_s: float                 # min sample time in the window
    t_end_s: float                   # max sample time + interval
    samples: int                     # telemetry rows folded
    node_ids: np.ndarray             # (k,) sorted unique node ids
    node_energy_j: np.ndarray        # (k,) per-node GPU energy
    node_mean_power_w: np.ndarray    # (k,) per-node mean per-GPU power
    region_energy_j: np.ndarray      # (4,) per-mode GPU energy
    region_gpu_hours: np.ndarray     # (4,) per-mode GPU-hours
    energy_j: float                  # fleet GPU energy in the window
    gpu_hours: float
    mean_gpu_power_w: float
    max_gpu_power_w: float
    over_limit_samples: int          # GPU samples above power_limit_w
    power_limit_w: float
    # -- the decision in force while this window's samples were charged
    cap: Optional[float]
    objective: Optional[str]
    published_version: Optional[int]
    published_frontier_s: Optional[float]
    # -- ingest deltas (this window's fold vs the previous record)
    samples_in_delta: int
    late_dropped_delta: int
    duplicates_delta: int
    # -- alert-state deltas
    alerts_firing: int
    alert_transitions_delta: int

    def to_dict(self, *, top_nodes: int = 16) -> dict:
        """JSON-ready form; per-node arrays trimmed to the top sinks."""
        order = np.argsort(-self.node_energy_j, kind="stable")[:top_nodes]
        return {
            "index": self.index,
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "samples": self.samples,
            "nodes": int(len(self.node_ids)),
            "energy_j": self.energy_j,
            "gpu_hours": self.gpu_hours,
            "mean_gpu_power_w": self.mean_gpu_power_w,
            "max_gpu_power_w": self.max_gpu_power_w,
            "over_limit_samples": self.over_limit_samples,
            "power_limit_w": self.power_limit_w,
            "region_energy_j": [float(x) for x in self.region_energy_j],
            "region_gpu_hours": [float(x) for x in self.region_gpu_hours],
            "top_nodes": [
                {
                    "node": int(self.node_ids[i]),
                    "energy_j": float(self.node_energy_j[i]),
                    "mean_power_w": float(self.node_mean_power_w[i]),
                }
                for i in order
            ],
            "cap": self.cap,
            "objective": self.objective,
            "published_version": self.published_version,
            "published_frontier_s": self.published_frontier_s,
            "samples_in_delta": self.samples_in_delta,
            "late_dropped_delta": self.late_dropped_delta,
            "duplicates_delta": self.duplicates_delta,
            "alerts_firing": self.alerts_firing,
            "alert_transitions_delta": self.alert_transitions_delta,
        }


def make_record(
    window: TelemetryChunk,
    *,
    index: int,
    interval_s: float = constants.TELEMETRY_INTERVAL_S,
    power_limit_w: float = constants.GCD_MAX_POWER_W,
    cap: Optional[float] = None,
    objective: Optional[str] = None,
    published_version: Optional[int] = None,
    published_frontier_s: Optional[float] = None,
    samples_in_delta: int = 0,
    late_dropped_delta: int = 0,
    duplicates_delta: int = 0,
    alerts_firing: int = 0,
    alert_transitions_delta: int = 0,
) -> WindowRecord:
    """Compact one sealed window into a :class:`WindowRecord`."""
    n = len(window)
    if n == 0:
        t = 0.0
        return WindowRecord(
            index=index, t_start_s=t, t_end_s=t, samples=0,
            node_ids=np.empty(0, dtype=np.int64),
            node_energy_j=np.empty(0),
            node_mean_power_w=np.empty(0),
            region_energy_j=np.zeros(4),
            region_gpu_hours=np.zeros(4),
            energy_j=0.0, gpu_hours=0.0,
            mean_gpu_power_w=0.0, max_gpu_power_w=0.0,
            over_limit_samples=0, power_limit_w=float(power_limit_w),
            cap=cap, objective=objective,
            published_version=published_version,
            published_frontier_s=published_frontier_s,
            samples_in_delta=samples_in_delta,
            late_dropped_delta=late_dropped_delta,
            duplicates_delta=duplicates_delta,
            alerts_firing=alerts_firing,
            alert_transitions_delta=alert_transitions_delta,
        )
    power = window.gpu_power_w                       # (n, gpus)
    flat = power.reshape(-1).astype(np.float64)
    node_ids, inverse = np.unique(window.node_id, return_inverse=True)
    per_node_j = np.bincount(
        np.repeat(inverse, power.shape[1]),
        weights=flat, minlength=len(node_ids),
    ) * interval_s
    per_node_rows = np.bincount(inverse, minlength=len(node_ids))
    per_node_mean_w = per_node_j / (
        np.maximum(per_node_rows, 1) * power.shape[1] * interval_s
    )
    reg = region_index(power).reshape(-1)
    region_j = np.bincount(reg, weights=flat, minlength=4) * interval_s
    region_hours = (
        np.bincount(reg, minlength=4).astype(np.float64)
        * interval_s / 3600.0
    )
    return WindowRecord(
        index=index,
        t_start_s=float(window.time_s.min()),
        t_end_s=float(window.time_s.max()) + interval_s,
        samples=n,
        node_ids=node_ids.astype(np.int64),
        node_energy_j=per_node_j,
        node_mean_power_w=per_node_mean_w,
        region_energy_j=region_j,
        region_gpu_hours=region_hours,
        energy_j=float(flat.sum() * interval_s),
        gpu_hours=n * power.shape[1] * interval_s / 3600.0,
        mean_gpu_power_w=float(flat.mean()),
        max_gpu_power_w=float(flat.max()),
        over_limit_samples=int((flat > power_limit_w).sum()),
        power_limit_w=float(power_limit_w),
        cap=cap,
        objective=objective,
        published_version=published_version,
        published_frontier_s=published_frontier_s,
        samples_in_delta=samples_in_delta,
        late_dropped_delta=late_dropped_delta,
        duplicates_delta=duplicates_delta,
        alerts_firing=alerts_firing,
        alert_transitions_delta=alert_transitions_delta,
    )


class FlightRecorder:
    """Bounded ring buffer of :class:`WindowRecord` entries.

    Appends are O(1); once ``capacity`` records are held the oldest is
    evicted (and counted in :attr:`evicted`), so memory stays bounded
    however long the stream runs.  :meth:`window_range` slices by fold
    index for incident bundles.
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ForensicsError("recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.windows_seen = 0
        self.evicted = 0

    def append(self, record: WindowRecord) -> None:
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)
        self.windows_seen += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def records(self) -> List[WindowRecord]:
        return list(self._ring)

    @property
    def last(self) -> Optional[WindowRecord]:
        return self._ring[-1] if self._ring else None

    def window_range(self, first: int, last: int) -> List[WindowRecord]:
        """Records with ``first <= index <= last`` still in the ring."""
        return [r for r in self._ring if first <= r.index <= last]

    def metric_values(self) -> Dict[str, float]:
        return {
            "forensics_windows_recorded": float(self.windows_seen),
            "forensics_records_resident": float(len(self._ring)),
            "forensics_records_evicted": float(self.evicted),
        }
