"""The incident engine: detector firings merged into event-time incidents.

A detector fires per window; an operator thinks in *incidents* — one
contiguous event-time episode per root cause.  :class:`IncidentEngine`
folds the per-window :class:`~.detectors.Finding` stream into
:class:`Incident` objects:

* consecutive firings of the same detector merge while the gap between
  firing windows is at most ``merge_gap`` windows; a longer quiet
  stretch resolves the incident, and the next firing opens a new one;
* incident ids are sequential in fold order (``inc-001``, ``inc-002``,
  ...), so a replayed campaign reproduces the identical id sequence;
* every incident accumulates top-k attribution along three axes —
  nodes (energy of the implicated nodes), jobs (energy by job id via
  the scheduler join, when a tagger is attached), and power modes
  (region energy) — plus a pointer into the flight recorder's window
  range (``first_window``/``last_window``) for bundle slicing.

Everything here is driven by fold order and event time; no wall clock,
no randomness.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ... import constants
from ...core.join import REGION_NAMES
from .detectors import Finding
from .recorder import WindowRecord

#: Default windows of quiet tolerated inside one incident.
DEFAULT_MERGE_GAP = 2

#: Kept verbatim per incident; later findings only update aggregates.
MAX_FINDINGS_KEPT = 64


class Incident:
    """One contiguous event-time episode of a single detector."""

    def __init__(self, *, id: str, detector: str, severity: str) -> None:
        self.id = id
        self.detector = detector
        self.severity = severity
        self.status = "open"
        self.first_window = -1
        self.last_window = -1
        self.t_start_s = float("inf")
        self.t_end_s = float("-inf")
        self.windows_firing = 0
        self.peak_value = float("-inf")
        self.threshold = 0.0
        self.peak_summary = ""
        self.findings: List[Finding] = []
        self._node_j: Dict[int, float] = {}
        self._job_j: Dict[int, float] = {}
        self._mode_j = np.zeros(4)

    # -- fold ---------------------------------------------------------------------

    def extend(self, record: WindowRecord,
               findings: Sequence[Finding]) -> None:
        if self.first_window < 0:
            self.first_window = record.index
            self.t_start_s = record.t_start_s
        self.last_window = record.index
        self.t_end_s = max(self.t_end_s, record.t_end_s)
        self.windows_firing += 1
        for f in findings:
            if len(self.findings) < MAX_FINDINGS_KEPT:
                self.findings.append(f)
            if abs(f.value) > abs(self.peak_value) or not self.peak_summary:
                self.peak_value = f.value
                self.threshold = f.threshold
                self.peak_summary = f.summary

    def attribute_nodes(self, nodes: Mapping[int, float]) -> None:
        for node, energy in nodes.items():
            self._node_j[int(node)] = (
                self._node_j.get(int(node), 0.0) + float(energy)
            )

    def attribute_jobs(self, jobs: Mapping[int, float]) -> None:
        for job, energy in jobs.items():
            self._job_j[int(job)] = (
                self._job_j.get(int(job), 0.0) + float(energy)
            )

    def attribute_modes(self, region_j: np.ndarray) -> None:
        self._mode_j += np.asarray(region_j, dtype=np.float64)

    def resolve(self) -> None:
        self.status = "resolved"

    # -- views --------------------------------------------------------------------

    @property
    def open(self) -> bool:
        return self.status == "open"

    def _top(self, table: Dict[int, float], k: int) -> List[dict]:
        order = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {"id": key, "energy_j": energy} for key, energy in order[:k]
        ]

    def to_dict(self, *, top_k: int = 5) -> dict:
        total_mode = float(self._mode_j.sum())
        modes = [
            {
                "region": int(i) + 1,
                "name": REGION_NAMES[int(i)],
                "energy_j": float(self._mode_j[i]),
                "share_pct": (
                    100.0 * float(self._mode_j[i]) / total_mode
                    if total_mode > 0 else 0.0
                ),
            }
            for i in np.argsort(-self._mode_j, kind="stable")[:top_k]
        ]
        return {
            "id": self.id,
            "detector": self.detector,
            "severity": self.severity,
            "status": self.status,
            "first_window": self.first_window,
            "last_window": self.last_window,
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "windows_firing": self.windows_firing,
            "peak_value": self.peak_value,
            "threshold": self.threshold,
            "summary": self.peak_summary,
            "top_nodes": self._top(self._node_j, top_k),
            "top_jobs": self._top(self._job_j, top_k),
            "top_modes": modes,
            "findings": [f.to_dict() for f in self.findings],
        }


class IncidentEngine:
    """Merge per-window findings into incidents, with attribution."""

    def __init__(
        self,
        *,
        merge_gap: int = DEFAULT_MERGE_GAP,
        top_k: int = 5,
        tagger=None,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        self.merge_gap = int(merge_gap)
        self.top_k = int(top_k)
        self.tagger = tagger
        self.interval_s = float(interval_s)
        self.incidents: List[Incident] = []
        self._open: Dict[str, Incident] = {}
        self.findings_total = 0
        #: Optional lifecycle callback ``fn(transition, incident)`` with
        #: ``transition`` in ``("open", "resolve")`` — called after the
        #: opening window is folded in (so ``first_window``/``t_start_s``
        #: are set) and on resolution.  Fold-order deterministic, which
        #: is what lets the structured event log stamp chunking-
        #: invariant ids on incident records.
        self.on_event = None

    # -- fold ---------------------------------------------------------------------

    def observe(self, record: WindowRecord,
                findings: Sequence[Finding], window=None) -> None:
        """Fold one window's findings; resolve incidents gone quiet."""
        by_detector: Dict[str, List[Finding]] = {}
        for f in findings:
            by_detector.setdefault(f.detector, []).append(f)
        self.findings_total += len(findings)

        for detector, fs in sorted(by_detector.items()):
            incident = self._open.get(detector)
            if (
                incident is not None
                and record.index - incident.last_window > self.merge_gap
            ):
                self._resolve(detector)
                incident = None
            opened = incident is None
            if opened:
                incident = Incident(
                    id=f"inc-{len(self.incidents) + 1:03d}",
                    detector=detector,
                    severity=fs[0].severity,
                )
                self.incidents.append(incident)
                self._open[detector] = incident
            incident.extend(record, fs)
            self._attribute(incident, record, fs, window)
            if opened and self.on_event is not None:
                self.on_event("open", incident)

        for detector in sorted(self._open):
            if detector in by_detector:
                continue
            if record.index - self._open[detector].last_window > self.merge_gap:
                self._resolve(detector)

    def finalize(self, *, last_index: Optional[int] = None) -> None:
        """End of stream: resolve incidents that had already gone quiet.

        An incident still firing within ``merge_gap`` windows of the
        final fold stays *open* — the fault was active when the stream
        ended, which is exactly what ``repro obs incidents --check``
        reports.  With no ``last_index`` everything resolves.
        """
        for detector in sorted(self._open):
            incident = self._open[detector]
            if (
                last_index is None
                or last_index - incident.last_window > self.merge_gap
            ):
                self._resolve(detector)

    def _resolve(self, detector: str) -> None:
        incident = self._open.pop(detector, None)
        if incident is not None:
            incident.resolve()
            if self.on_event is not None:
                self.on_event("resolve", incident)

    # -- attribution --------------------------------------------------------------

    def _attribute(self, incident: Incident, record: WindowRecord,
                   findings: Sequence[Finding], window) -> None:
        implicated: List[int] = []
        for f in findings:
            implicated.extend(f.nodes)
        # Node axis: implicated nodes' window energy; the whole fleet's
        # top sinks when the finding is fleet-wide (no node evidence).
        if implicated:
            mask = np.isin(record.node_ids, np.asarray(implicated))
        else:
            mask = np.ones(len(record.node_ids), dtype=bool)
        idx = np.nonzero(mask)[0]
        order = idx[np.argsort(-record.node_energy_j[idx], kind="stable")]
        order = order[: self.top_k]
        incident.attribute_nodes({
            int(record.node_ids[i]): float(record.node_energy_j[i])
            for i in order
        })
        incident.attribute_modes(record.region_energy_j)
        if self.tagger is None or window is None or not len(window):
            return
        jid = self.tagger.tag(window)
        row_j = (
            window.gpu_power_w.sum(axis=1).astype(np.float64)
            * self.interval_s
        )
        if implicated:
            row_mask = np.isin(window.node_id, np.asarray(implicated))
        else:
            row_mask = np.ones(len(window), dtype=bool)
        if not row_mask.any():
            return
        job_j = np.bincount(jid[row_mask], weights=row_j[row_mask])
        top = np.argsort(-job_j, kind="stable")[: self.top_k]
        incident.attribute_jobs({
            int(j): float(job_j[j]) for j in top if job_j[j] > 0
        })

    # -- views --------------------------------------------------------------------

    @property
    def open_incidents(self) -> List[Incident]:
        return [i for i in self.incidents if i.open]

    def get(self, incident_id: str) -> Optional[Incident]:
        for incident in self.incidents:
            if incident.id == incident_id:
                return incident
        return None

    def snapshot(self, *, top_k: Optional[int] = None) -> dict:
        k = top_k if top_k is not None else self.top_k
        return {
            "total": len(self.incidents),
            "open": len(self.open_incidents),
            "findings_total": self.findings_total,
            "incidents": [i.to_dict(top_k=k) for i in self.incidents],
        }


def render_timeline(incidents: Sequence, *,
                    title: str = "incident timeline:") -> str:
    """Human-readable event-time timeline of incident dictionaries.

    Accepts :class:`Incident` objects or their ``to_dict()`` form (the
    shape ``/v1/incidents`` serves), so the CLI renders live and
    exported incidents identically.
    """
    rows = [
        inc.to_dict() if isinstance(inc, Incident) else inc
        for inc in incidents
    ]
    lines = [title]
    if not rows:
        lines.append("  (no incidents)")
        return "\n".join(lines)
    for inc in rows:
        span = (
            f"[{inc['t_start_s']:>9,.0f} s .. {inc['t_end_s']:>9,.0f} s]"
        )
        lines.append(
            f"  {inc['id']}  {span} {inc['detector']:<18} "
            f"[{inc['severity']:<8}] {inc['status']:<8} "
            f"windows {inc['first_window']}..{inc['last_window']} "
            f"({inc['windows_firing']} firing)"
        )
        if inc.get("summary"):
            lines.append(f"        {inc['summary']}")
        tops = []
        if inc.get("top_nodes"):
            tops.append(
                "nodes " + ",".join(
                    str(t["id"]) for t in inc["top_nodes"][:3]
                )
            )
        if inc.get("top_jobs"):
            tops.append(
                "jobs " + ",".join(
                    str(t["id"]) for t in inc["top_jobs"][:3]
                )
            )
        if inc.get("top_modes"):
            tops.append(f"mode {inc['top_modes'][0]['name']}")
        if tops:
            lines.append("        attribution: " + "; ".join(tops))
    return "\n".join(lines)
