"""Process-safe metrics registry: counters, gauges, bounded histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): named counters, gauges, and fixed-bucket histograms,
optionally labelled, exportable as Prometheus text or JSON with no
dependencies beyond the standard library.

Process safety follows the same explicit-merge contract as the rest of
the repo's parallelism: each worker process accumulates into its own
registry, ships the picklable :meth:`MetricsRegistry.state` back with
its result, and the parent folds it in with
:meth:`MetricsRegistry.merge_state` — deterministic for any worker
count, like :func:`repro.parallel.chunked_map` itself.  Within one
process a lock guards family creation, so concurrent threads can share
a registry.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ObservabilityError

#: Metric and label names follow the Prometheus data model.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds (timings are the common case).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> LabelsKey:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ObservabilityError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition escaping: ``\\``, ``"``, and newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


_UNESCAPE_RE = re.compile(r"\\(.)")


def _unescape_label_value(value: str) -> str:
    """Inverse of :func:`_escape_label_value` (``\\n`` is a newline)."""
    return _UNESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value
    )


def _render_labels(key: LabelsKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in key
    )
    return "{" + inner + "}"


def _render_exemplar(exemplar: Optional[dict]) -> str:
    """OpenMetrics exemplar suffix, or ``""`` when there is none."""
    if not exemplar:
        return ""
    labels = _render_labels(
        tuple(sorted((k, str(v)) for k, v in exemplar["labels"].items()))
    ) or "{}"
    out = f" # {labels} {exemplar['value']:g}"
    if exemplar.get("ts") is not None:
        out += f" {exemplar['ts']:g}"
    return out


class Counter:
    """Monotonically increasing value (events, samples, bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (lag, resident samples, watermark age)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Bounded cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds of the finite buckets; an implicit
    ``+Inf`` bucket catches the rest, so state is O(len(buckets)) no
    matter how many observations arrive.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "exemplars")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ObservabilityError(
                "histogram buckets must be strictly increasing and non-empty"
            )
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)   # last = +Inf
        self.count = 0
        self.sum = 0.0
        #: OpenMetrics exemplars: bucket index -> {"labels", "value",
        #: "ts"}.  Slowest-wins per bucket, so the serve-latency buckets
        #: carry the trace id of the worst request they absorbed.
        #: Process-local: exemplars are exposition decoration, not
        #: counters, so they are not shipped through ``state()``/
        #: ``merge_state`` (worker exemplars stay with the worker).
        self.exemplars: Dict[int, dict] = {}

    def observe(self, value: float, *, exemplar: Optional[dict] = None,
                exemplar_ts: Optional[float] = None) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        idx = len(self.buckets)                        # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        if exemplar:
            have = self.exemplars.get(idx)
            if have is None or value >= have["value"]:
                self.exemplars[idx] = {
                    "labels": dict(exemplar),
                    "value": value,
                    "ts": exemplar_ts,
                }


class MetricsRegistry:
    """Named metric families with labelled series.

    One family per metric name; each family holds one series per unique
    label set.  Getter methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) create on first use and return the live series,
    so call sites read as ``registry.counter("x_total").inc()``.
    """

    def __init__(self) -> None:
        self._families: Dict[str, dict] = {}
        self._lock = threading.Lock()

    # -- series access ------------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[tuple] = None) -> dict:
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = {
                    "kind": kind,
                    "help": help_text,
                    "buckets": buckets,
                    "series": {},
                }
            elif fam["kind"] != kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as {fam['kind']}"
                )
            return fam

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        fam = self._family(name, "counter", help_text)
        key = _labels_key(labels)
        series = fam["series"]
        if key not in series:
            series[key] = Counter()
        return series[key]

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        fam = self._family(name, "gauge", help_text)
        key = _labels_key(labels)
        series = fam["series"]
        if key not in series:
            series[key] = Gauge()
        return series[key]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        fam = self._family(name, "histogram", help_text,
                           buckets=tuple(float(b) for b in buckets))
        key = _labels_key(labels)
        series = fam["series"]
        if key not in series:
            series[key] = Histogram(fam["buckets"])
        return series[key]

    # -- export -------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every family and series."""
        out: Dict[str, dict] = {}
        for name, fam in sorted(self._families.items()):
            series = []
            for key, metric in sorted(fam["series"].items()):
                entry: dict = {"labels": dict(key)}
                if fam["kind"] == "histogram":
                    entry.update(
                        count=metric.count,
                        sum=metric.sum,
                        buckets=list(fam["buckets"]),
                        bucket_counts=list(metric.bucket_counts),
                    )
                else:
                    entry["value"] = metric.value
                series.append(entry)
            out[name] = {
                "kind": fam["kind"], "help": fam["help"], "series": series,
            }
        return out

    def to_prometheus(self, *, exemplars: bool = False) -> str:
        """Prometheus text exposition format (version 0.0.4).

        With ``exemplars=True``, histogram bucket lines that captured an
        exemplar carry the OpenMetrics suffix
        ``# {trace_id="..."} value timestamp`` (timestamp omitted when
        the exemplar has none).  Exemplar labels are rendered sorted,
        so the opt-in output is as byte-stable as the default form, and
        both round-trip through :func:`parse_prometheus_text`.
        """
        lines = []
        for name, fam in sorted(self._families.items()):
            if fam["help"]:
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['kind']}")
            for key, metric in sorted(fam["series"].items()):
                if fam["kind"] == "histogram":
                    cumulative = 0
                    # ``le`` is sorted in with the series labels, not
                    # appended, so every exported line has its label
                    # keys in sorted order — the same canonical form
                    # ``_labels_key`` gives series keys.  Byte-stable
                    # output for any label insertion order.
                    for i, (bound, n) in enumerate(zip(
                        fam["buckets"], metric.bucket_counts
                    )):
                        cumulative += n
                        le = _render_labels(tuple(sorted(
                            key + (("le", f"{bound:g}"),)
                        )))
                        line = f"{name}_bucket{le} {cumulative}"
                        if exemplars:
                            line += _render_exemplar(metric.exemplars.get(i))
                        lines.append(line)
                    le = _render_labels(tuple(sorted(
                        key + (("le", "+Inf"),)
                    )))
                    line = f"{name}_bucket{le} {metric.count}"
                    if exemplars:
                        line += _render_exemplar(
                            metric.exemplars.get(len(fam["buckets"]))
                        )
                    lines.append(line)
                    lbl = _render_labels(key)
                    lines.append(f"{name}_sum{lbl} {metric.sum:g}")
                    lines.append(f"{name}_count{lbl} {metric.count}")
                else:
                    lbl = _render_labels(key)
                    lines.append(f"{name}{lbl} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- process merge ------------------------------------------------------------

    def state(self) -> dict:
        """Picklable state for shipping across process boundaries."""
        return self.to_dict()

    def merge_state(self, state: dict) -> None:
        """Fold a worker's exported state into this registry.

        Counters and histograms are additive; gauges take the incoming
        value (last write wins — workers report their final reading).
        """
        for name, fam in state.items():
            kind = fam["kind"]
            for entry in fam["series"]:
                labels = entry["labels"]
                if kind == "counter":
                    self.counter(name, fam["help"], **labels).inc(
                        entry["value"]
                    )
                elif kind == "gauge":
                    self.gauge(name, fam["help"], **labels).set(
                        entry["value"]
                    )
                elif kind == "histogram":
                    hist = self.histogram(
                        name, fam["help"], buckets=entry["buckets"],
                        **labels,
                    )
                    if list(hist.buckets) != list(entry["buckets"]):
                        raise ObservabilityError(
                            f"histogram {name!r} bucket mismatch on merge"
                        )
                    for i, n in enumerate(entry["bucket_counts"]):
                        hist.bucket_counts[i] += n
                    hist.count += entry["count"]
                    hist.sum += entry["sum"]
                else:
                    raise ObservabilityError(
                        f"unknown metric kind {kind!r} in merge"
                    )

    # -- convenience --------------------------------------------------------------

    def counter_values(self) -> Dict[str, float]:
        """Flat {name{labels}: value} view of counters and gauges."""
        out = {}
        for name, fam in sorted(self._families.items()):
            if fam["kind"] == "histogram":
                continue
            for key, metric in sorted(fam["series"].items()):
                if math.isfinite(metric.value):
                    out[name + _render_labels(key)] = metric.value
        return out

    def histogram_totals(
        self, name: str, le: float = math.inf
    ) -> Tuple[float, float]:
        """``(count, count_at_or_under_le)`` across a family's series.

        Sums every labelled series of histogram ``name``: total
        observations and those that landed in finite buckets with
        bound ``<= le``.  The SLO layer turns consecutive readings
        into per-window good/bad request counts (see
        :mod:`repro.obs.history.slo`).  Missing or non-histogram
        names read as ``(0, 0)``.
        """
        fam = self._families.get(name)
        if fam is None or fam["kind"] != "histogram":
            return 0.0, 0.0
        total = within = 0.0
        for metric in fam["series"].values():
            total += metric.count
            for bound, n in zip(fam["buckets"], metric.bucket_counts):
                if bound <= le:
                    within += n
        return total, within


#: One exposition sample: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$"
)
#: OpenMetrics exemplar tail: `` # {labels} value [timestamp]``.  The
#: label block is brace-free inside (exemplar labels are plain ids),
#: so anchoring at end-of-line never eats a sample's own label block.
_EXEMPLAR_TAIL_RE = re.compile(
    r"\s+#\s+\{[^{}]*\}\s+\S+(?:\s+\S+)?\s*$"
)


def _strip_exemplar(line: str) -> str:
    """Drop an OpenMetrics exemplar suffix so sample parsing sees
    ``name{labels} value`` exactly as the non-exemplar form renders it —
    that is what makes exemplar output round-trip through the parsers."""
    return _EXEMPLAR_TAIL_RE.sub("", line)
#: One ``key="value"`` pair inside a label block (escapes included).
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Flat ``{name{labels}: value}`` from Prometheus exposition text.

    The inverse of :meth:`MetricsRegistry.to_prometheus` for the sample
    lines (comments and malformed lines are skipped; series keys keep
    their label string verbatim).  Lets ``repro obs summary --url`` read
    a live ``/metrics`` endpoint with no client dependency.  For
    structured access to labels and histograms, see
    :func:`parse_prometheus_series` and :func:`parse_histograms`.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = _strip_exemplar(line).rsplit(None, 1)
        if len(parts) != 2:
            continue
        key, raw = parts
        try:
            out[key] = float(raw)
        except ValueError:
            continue
    return out


def parse_prometheus_series(
    text: str,
) -> Dict[str, list]:
    """Structured parse: ``{name: [(labels_dict, value), ...]}``.

    Label values are unescaped (``\\"``, ``\\\\``, and ``\\n``), the
    exact inverse of the emit-side escaping, so values containing
    backslashes, quotes, or newlines round-trip through
    :meth:`MetricsRegistry.to_prometheus`; comments and malformed
    lines are skipped, like :func:`parse_prometheus_text`.
    """
    out: Dict[str, list] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(_strip_exemplar(line))
        if match is None:
            continue
        name, label_block, raw = match.groups()
        try:
            value = float(raw)
        except ValueError:
            continue
        labels = {
            k: _unescape_label_value(v)
            for k, v in _LABEL_PAIR_RE.findall(label_block or "")
        }
        out.setdefault(name, []).append((labels, value))
    return out


def parse_histograms(text: str) -> Dict[str, dict]:
    """Histogram families reassembled from ``_bucket``/``_sum``/``_count``.

    Returns ``{base_name: {labels_key: series}}`` where ``labels_key``
    is the sorted label tuple *without* ``le`` and each series is
    ``{"labels": dict, "buckets": [(bound, cumulative), ...],
    "sum": float, "count": float}`` with buckets sorted by bound
    (``+Inf`` becomes ``math.inf``).  Feed a series' buckets to
    :func:`histogram_quantile` for latency quantiles.
    """
    out: Dict[str, dict] = {}

    def slot(base: str, labels: Dict[str, str]) -> dict:
        key = tuple(sorted(labels.items()))
        return out.setdefault(base, {}).setdefault(key, {
            "labels": dict(sorted(labels.items())),
            "buckets": [], "sum": 0.0, "count": 0.0,
        })

    for name, rows in parse_prometheus_series(text).items():
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            for labels, value in rows:
                le = labels.get("le")
                if le is None:
                    continue
                if le in ("+Inf", "Inf", "inf"):
                    bound = math.inf
                else:
                    try:
                        bound = float(le)
                    except ValueError:
                        continue
                rest = {k: v for k, v in labels.items() if k != "le"}
                slot(base, rest)["buckets"].append((bound, value))
        elif name.endswith("_sum"):
            for labels, value in rows:
                slot(name[: -len("_sum")], labels)["sum"] = value
        elif name.endswith("_count"):
            for labels, value in rows:
                slot(name[: -len("_count")], labels)["count"] = value
    # Drop families that never saw a bucket line (plain counters whose
    # names merely end in _sum/_count), and order buckets by bound.
    for base in [b for b, series in out.items()
                 if all(not s["buckets"] for s in series.values())]:
        del out[base]
    for series in out.values():
        for entry in series.values():
            entry["buckets"].sort(key=lambda bc: bc[0])
    return out


def histogram_quantile(buckets, q: float) -> Optional[float]:
    """The ``q`` quantile from cumulative ``(bound, count)`` buckets.

    PromQL ``histogram_quantile`` semantics: linear interpolation
    inside the bucket where the rank falls, a lower bound of 0 for the
    first finite bucket, and the highest finite bound when the rank
    lands in ``+Inf``.  Returns ``None`` for empty histograms.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
    buckets = sorted(buckets, key=lambda bc: bc[0])
    if not buckets or buckets[-1][1] <= 0:
        return None
    rank = q * buckets[-1][1]
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in buckets:
        if cum >= rank:
            if math.isinf(bound):
                return prev_bound
            if cum <= prev_cum:
                return bound
            return prev_bound + (bound - prev_bound) * (
                (rank - prev_cum) / (cum - prev_cum)
            )
        if math.isfinite(bound):
            prev_bound = bound
        prev_cum = cum
    return prev_bound

