"""Tracing spans with monotonic timings and parent/child context.

A span brackets one unit of work (``with tracer.span("join.block")``),
records a wall-clock start and a ``perf_counter`` duration, and links to
its parent through a :mod:`contextvars` context, so nested calls build a
tree without any plumbing at the call sites.  Finished spans are plain
dicts (JSON- and pickle-ready); the bounded ``finished`` list keeps
tracer memory O(``max_spans``) on arbitrarily long runs.

Cross-process propagation mirrors :func:`repro.parallel.chunked_map`'s
merge contract: the parent exports its current span id, each worker
starts a fresh :class:`Tracer` rooted at that id, and the worker's
finished spans are grafted back into the parent's list — one trace tree
spanning every process.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

#: Current span id of this execution context (None = at the root).
_CURRENT: ContextVar[Optional[str]] = ContextVar("repro_obs_span",
                                                 default=None)


class NoopSpan:
    """Shared do-nothing span: the disabled-observability fast path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


class Span:
    """One live span; appends its record to the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "t0_unix", "_t0", "_token")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (cheap on the noop path too)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        current = _CURRENT.get()
        self.parent_id = (
            current if current is not None else self._tracer.root_parent
        )
        self._token = _CURRENT.set(self.span_id)
        self.t0_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_s = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        self._tracer._record({
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self._tracer.pid,
            "t0_unix": self.t0_unix,
            "duration_s": duration_s,
            "attrs": self.attrs,
            "error": exc_type.__name__ if exc_type is not None else None,
        })
        return False


class Tracer:
    """Collects finished spans for one process (bounded memory)."""

    def __init__(self, *, root_parent: Optional[str] = None,
                 max_spans: int = 100_000) -> None:
        self.pid = os.getpid()
        self.root_parent = root_parent
        self.max_spans = max_spans
        self.finished: List[Dict[str, Any]] = []
        self.dropped = 0
        self._seq = 0

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.pid:x}-{self._seq:x}"

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def current_id(self) -> Optional[str]:
        """The span id enclosing this call (for context export)."""
        current = _CURRENT.get()
        return current if current is not None else self.root_parent

    def _record(self, record: Dict[str, Any]) -> None:
        if len(self.finished) >= self.max_spans:
            self.dropped += 1
            return
        self.finished.append(record)

    def absorb(self, spans: List[Dict[str, Any]], dropped: int = 0) -> None:
        """Graft a worker's finished spans into this tracer."""
        self.dropped += dropped
        room = self.max_spans - len(self.finished)
        if room <= 0:
            self.dropped += len(spans)
            return
        self.finished.extend(spans[:room])
        self.dropped += max(0, len(spans) - room)


def aggregate_spans(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-name rollup: count, total/mean/max duration, sorted slowest-first."""
    rollup: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        agg = rollup.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "total_s": 0.0,
             "max_s": 0.0},
        )
        agg["count"] += 1
        agg["total_s"] += record["duration_s"]
        agg["max_s"] = max(agg["max_s"], record["duration_s"])
    for agg in rollup.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return sorted(rollup.values(), key=lambda a: a["total_s"], reverse=True)
