"""Tracing spans with monotonic timings and parent/child context.

A span brackets one unit of work (``with tracer.span("join.block")``),
records a wall-clock start and a ``perf_counter`` duration, and links to
its parent through a :mod:`contextvars` context, so nested calls build a
tree without any plumbing at the call sites.  Finished spans are plain
dicts (JSON- and pickle-ready); the bounded ``finished`` list keeps
tracer memory O(``max_spans``) on arbitrarily long runs.

Cross-process propagation mirrors :func:`repro.parallel.chunked_map`'s
merge contract: the parent exports its current span id, each worker
starts a fresh :class:`Tracer` rooted at that id, and the worker's
finished spans are grafted back into the parent's list — one trace tree
spanning every process.  :meth:`Tracer.absorb` is guarded against
double-grafting: every batch is fingerprinted and absorbing the same
batch twice raises, mirroring the non-aliasing contract of
``merge_cubes``.

The tracer also publishes its *innermost active span* as two plain
attributes (``active_span_id`` / ``active_span_name``) on every span
enter/exit.  Unlike the contextvar (which is per-execution-context and
invisible to other threads), the attributes are readable from a sampling
thread — which is exactly what the span-linked profiler
(:mod:`repro.obs.profiling`) does to tag each stack sample with the span
it landed in.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from ..errors import ObservabilityError

#: Current span id of this execution context (None = at the root).
_CURRENT: ContextVar[Optional[str]] = ContextVar("repro_obs_span",
                                                 default=None)

#: Per-process tracer instance counter.  Pooled worker processes build a
#: fresh Tracer for every task; without an instance component two tasks
#: run by the same worker would restart the id sequence and collide.
_TRACER_EPOCH = itertools.count(1)


class NoopSpan:
    """Shared do-nothing span: the disabled-observability fast path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


class Span:
    """One live span; appends its record to the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "t0_unix", "_t0", "_token", "_prev_active")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (cheap on the noop path too)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        current = _CURRENT.get()
        self.parent_id = (
            current if current is not None else tracer.root_parent
        )
        self._token = _CURRENT.set(self.span_id)
        self._prev_active = (tracer.active_span_id, tracer.active_span_name)
        tracer.active_span_id = self.span_id
        tracer.active_span_name = self.name
        if tracer._hooks is not None:
            tracer._hooks.on_enter(self)
        self.t0_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_s = time.perf_counter() - self._t0
        tracer = self._tracer
        if tracer._hooks is not None:
            tracer._hooks.on_exit(self)
        tracer.active_span_id, tracer.active_span_name = self._prev_active
        _CURRENT.reset(self._token)
        tracer._record({
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": tracer.pid,
            "t0_unix": self.t0_unix,
            "duration_s": duration_s,
            "attrs": self.attrs,
            "error": exc_type.__name__ if exc_type is not None else None,
        })
        return False


class Tracer:
    """Collects finished spans for one process (bounded memory)."""

    def __init__(self, *, root_parent: Optional[str] = None,
                 max_spans: int = 100_000) -> None:
        self.pid = os.getpid()
        self.root_parent = root_parent
        self.max_spans = max_spans
        self.finished: List[Dict[str, Any]] = []
        self.dropped = 0
        self._seq = 0
        self._epoch = next(_TRACER_EPOCH)
        self._absorbed: set = set()
        #: Innermost live span of the *last* thread to enter/exit one —
        #: thread-visible (unlike the contextvar) for the profiler.
        self.active_span_id: Optional[str] = None
        self.active_span_name: Optional[str] = None
        self._hooks = None

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.pid:x}-{self._epoch:x}-{self._seq:x}"

    @property
    def trace_id(self) -> str:
        """Identity shared by every span this tracer mints.

        Span ids are ``{pid}-{epoch}-{seq}``; the ``{pid}-{epoch}``
        prefix names the tracer instance itself, so it doubles as the
        trace id the event log stamps on records for span correlation.
        """
        return f"{self.pid:x}-{self._epoch:x}"

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def current_id(self) -> Optional[str]:
        """The span id enclosing this call (for context export)."""
        current = _CURRENT.get()
        return current if current is not None else self.root_parent

    def set_hooks(self, hooks) -> None:
        """Install (or clear, with ``None``) span enter/exit callbacks.

        ``hooks`` exposes ``on_enter(span)`` / ``on_exit(span)``; the
        exit callback runs before the record is appended, so it may
        stamp attributes (the memory profiler's ``mem_*_kb``) that land
        in the finished record.
        """
        self._hooks = hooks

    def _record(self, record: Dict[str, Any]) -> None:
        if len(self.finished) >= self.max_spans:
            self.dropped += 1
            return
        self.finished.append(record)

    def absorb(self, spans: List[Dict[str, Any]], dropped: int = 0) -> None:
        """Graft a worker's finished spans into this tracer — once.

        Each batch is fingerprinted by its first/last span ids and
        length (span ids are unique per process *and* per tracer
        instance, so two batches never share a fingerprint); absorbing
        the same batch a second time raises
        :class:`~repro.errors.ObservabilityError` instead of silently
        double-counting every span, mirroring the non-aliasing contract
        of ``merge_cubes``.
        """
        if spans:
            key = (spans[0]["span_id"], spans[-1]["span_id"], len(spans))
            if key in self._absorbed:
                raise ObservabilityError(
                    f"span batch {key[0]}..{key[1]} ({key[2]} spans) was "
                    "already absorbed; worker payloads fold in exactly once"
                )
            self._absorbed.add(key)
        self.dropped += dropped
        room = self.max_spans - len(self.finished)
        if room <= 0:
            self.dropped += len(spans)
            return
        self.finished.extend(spans[:room])
        self.dropped += max(0, len(spans) - room)


def aggregate_spans(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-name rollup: count, total/self/mean/max, sorted slowest-first.

    ``total_s`` is cumulative (wall time under the span); ``self_s`` is
    exclusive — the span's duration minus the summed durations of its
    *direct* children, clamped at zero (children that ran concurrently
    in worker processes can overlap more of the parent's wall time than
    the parent spent).  Records without a ``span_id`` (hand-built
    rollups) count their full duration as self time.
    """
    child_s: Dict[str, float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None:
            child_s[parent] = child_s.get(parent, 0.0) + record["duration_s"]
    rollup: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        agg = rollup.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "total_s": 0.0,
             "self_s": 0.0, "max_s": 0.0},
        )
        agg["count"] += 1
        agg["total_s"] += record["duration_s"]
        agg["max_s"] = max(agg["max_s"], record["duration_s"])
        own = record["duration_s"]
        span_id = record.get("span_id")
        if span_id is not None:
            own = max(0.0, own - child_s.get(span_id, 0.0))
        agg["self_s"] += own
    for agg in rollup.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return sorted(rollup.values(), key=lambda a: a["total_s"], reverse=True)
