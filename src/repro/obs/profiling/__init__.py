"""Span-linked profiling: the third leg of the observability triad.

Metrics say *how much*, traces say *where*, profiles say *why*: this
subpackage attributes wall time and memory **inside** spans, with zero
dependencies beyond the standard library and the same invariants the
rest of :mod:`repro.obs` holds —

* **Output identity.**  Profiling only observes: a profiled
  ``repro run table5 --profile`` writes byte-identical artifacts
  (asserted in ``tests/obs/test_profiling.py``).
* **Worker-count invariance.**  Worker profiles fold back in chunk
  order through :func:`repro.parallel.chunked_map`'s payload channel,
  exactly like spans and metrics, and every exporter is a deterministic
  function of the folded state.
* **No disabled cost.**  Nothing here is imported, let alone running,
  until :func:`repro.obs.runtime.start_profiling` is called; the hot
  paths' <2 % disabled-overhead gate is untouched.

Pieces: :class:`SamplingProfiler` (``sys._current_frames`` stack sampler
tagging every sample with the tracer's innermost active span),
:class:`ExactProfiler` (:mod:`cProfile` wrapper), :class:`MemoryHooks`
(:mod:`tracemalloc` per-span deltas + top allocation sites), exporters
(collapsed stacks for flamegraphs, Chrome ``trace_event`` JSON, the
self/cumulative attribution table), and perf budgets
(``benchmarks/perf_budget.json`` checked by ``repro obs profile
--check``).  See ``docs/observability.md`` ("Profiling") and
``docs/performance.md`` for a flamegraph walkthrough.
"""

from .budget import DEFAULT_BUDGET_PATH, BudgetCheck, check_budget, load_budget
from .export import (
    collapse_samples,
    profile_timings,
    render_attribution,
    render_hot_stacks,
    render_memory_sites,
    to_chrome_trace,
    to_collapsed,
    write_profile_artifacts,
)
from .sampler import ExactProfiler, MemoryHooks, SamplingProfiler, frame_label

__all__ = [
    "DEFAULT_BUDGET_PATH",
    "BudgetCheck",
    "check_budget",
    "load_budget",
    "collapse_samples",
    "profile_timings",
    "render_attribution",
    "render_hot_stacks",
    "render_memory_sites",
    "to_chrome_trace",
    "to_collapsed",
    "write_profile_artifacts",
    "ExactProfiler",
    "MemoryHooks",
    "SamplingProfiler",
    "frame_label",
]
