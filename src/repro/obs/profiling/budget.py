"""Named span perf budgets: the contract behind ``repro obs profile --check``.

A budget file (shipped at ``benchmarks/perf_budget.json``) pins a
maximum total (and optionally mean) wall time per span name for a fixed
reference workload.  ``repro obs profile --check`` runs that workload
under the profiler and fails when any recorded span blows its budget —
the CI gate that keeps the observability triad honest: metrics say how
much, traces say where, profiles say *why*, and budgets say *how much is
too much*.

Budgets are deliberately generous (shared CI runners are noisy); the
fine-grained trajectory lives in ``benchmarks/BENCH_history.jsonl``,
which the same profile run feeds via ``bench_history.py --append`` so
slow drift is visible long before a budget trips.  A budgeted span that
the reference run did not record is reported ``absent`` but does not
fail the check — budgets may cover more paths (e.g. streaming) than one
reference experiment exercises; pair each budget with the workload that
records it in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence

from ...errors import ObservabilityError
from ..trace import aggregate_spans

#: Repo-relative default consumed by the CLI and CI.
DEFAULT_BUDGET_PATH = "benchmarks/perf_budget.json"


def load_budget(path) -> dict:
    """Load and validate a budget document.

    Layout::

        {
          "description": "...",
          "reference": {"experiment": "table5", "nodes": 24, ...},
          "budgets": {
            "experiment.table5": {"max_total_s": 120.0},
            "gpu.run_batch":     {"max_total_s": 60.0, "max_mean_s": 1.0}
          }
        }
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(
            f"cannot read perf budget {path}: {exc}"
        ) from exc
    budgets = doc.get("budgets")
    if not isinstance(budgets, dict) or not budgets:
        raise ObservabilityError(
            f"{path} is not a perf budget (no non-empty 'budgets' object)"
        )
    for name, limit in budgets.items():
        if not isinstance(limit, dict) or "max_total_s" not in limit:
            raise ObservabilityError(
                f"budget for span {name!r} needs a 'max_total_s' bound"
            )
        for key in ("max_total_s", "max_mean_s"):
            if key in limit and not (
                isinstance(limit[key], (int, float)) and limit[key] > 0
            ):
                raise ObservabilityError(
                    f"budget {name!r}: {key} must be a positive number"
                )
    return doc


@dataclass
class BudgetCheck:
    """Outcome of checking recorded spans against a budget document."""

    rows: List[dict] = field(default_factory=list)

    @property
    def breaches(self) -> List[dict]:
        return [row for row in self.rows if row["status"] == "OVER"]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def render(self) -> str:
        lines = [
            f"  {'span':<26} {'budget s':>10} {'actual s':>10} "
            f"{'mean s':>10}  status"
        ]
        for row in self.rows:
            total = (
                f"{row['total_s']:.4f}" if row["total_s"] is not None else "-"
            )
            mean = (
                f"{row['mean_s']:.4f}" if row["mean_s"] is not None else "-"
            )
            lines.append(
                f"  {row['span']:<26} {row['max_total_s']:>10.2f} "
                f"{total:>10} {mean:>10}  {row['status']}"
            )
        verdict = (
            "perf budget OK"
            if self.ok
            else f"perf budget BREACHED ({len(self.breaches)} span(s) over)"
        )
        return "\n".join([*lines, verdict])


def check_budget(spans: Sequence[dict], budget: dict) -> BudgetCheck:
    """Compare recorded spans against the budget's named bounds."""
    aggs = {agg["name"]: agg for agg in aggregate_spans(spans)}
    check = BudgetCheck()
    for name, limit in sorted(budget["budgets"].items()):
        agg = aggs.get(name)
        if agg is None:
            check.rows.append({
                "span": name,
                "max_total_s": limit["max_total_s"],
                "total_s": None,
                "mean_s": None,
                "status": "absent",
            })
            continue
        over = agg["total_s"] > limit["max_total_s"]
        max_mean = limit.get("max_mean_s")
        if max_mean is not None and agg["mean_s"] > max_mean:
            over = True
        check.rows.append({
            "span": name,
            "max_total_s": limit["max_total_s"],
            "total_s": agg["total_s"],
            "mean_s": agg["mean_s"],
            "status": "OVER" if over else "ok",
        })
    return check
