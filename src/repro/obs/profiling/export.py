"""Profile exporters: collapsed stacks, Chrome trace, attribution table.

Every exporter is a pure, deterministic function of the recorded spans
and samples — fold the same state, get the same bytes — so profiles
merged across ``chunked_map`` workers export identically for any worker
count, the same invariance contract the span tree already honours.

* :func:`to_collapsed` — the collapsed-stack ("folded") format consumed
  by ``flamegraph.pl``, speedscope, and the Firefox Profiler: one line
  per distinct stack, frames ``;``-joined root-first, sample count last.
  Samples tagged with a span get a synthetic ``span:<name>`` root frame
  so the flamegraph groups by span.
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON (load in
  ``chrome://tracing`` or https://ui.perfetto.dev): spans become ``X``
  complete events on their process track, samples become ``i`` instant
  events.
* :func:`render_attribution` — the per-span self/cumulative table
  (``self_s`` from :func:`~repro.obs.trace.aggregate_spans`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from ..trace import aggregate_spans


def collapse_samples(samples: Iterable[dict], *,
                     by_span: bool = True) -> Dict[str, int]:
    """Fold samples into ``{";"-joined stack: count}`` (deterministic)."""
    folded: Dict[str, int] = {}
    for sample in samples:
        stack = list(sample.get("stack") or ())
        if not stack:
            continue
        if by_span and sample.get("span"):
            stack.insert(0, f"span:{sample['span']}")
        key = ";".join(stack)
        folded[key] = folded.get(key, 0) + 1
    return folded


def to_collapsed(samples: Iterable[dict], *, by_span: bool = True) -> str:
    """Collapsed-stack text: ``frame;frame;frame count`` per line."""
    folded = collapse_samples(samples, by_span=by_span)
    if not folded:
        return ""
    return "\n".join(
        f"{stack} {count}" for stack, count in sorted(folded.items())
    ) + "\n"


def to_chrome_trace(spans: Sequence[dict], samples: Sequence[dict] = (),
                    *, origin_unix: Optional[float] = None) -> dict:
    """Chrome ``trace_event`` document of spans (+ optional samples).

    Timestamps are microseconds relative to ``origin_unix`` (default:
    the earliest span start / sample time), so the viewer opens at t=0.
    Exception-unwound spans export like any other, with the exception
    class under ``args.error``.
    """
    times = [rec["t0_unix"] for rec in spans]
    times += [s["t_unix"] for s in samples if s.get("t_unix") is not None]
    t0 = origin_unix if origin_unix is not None else min(times, default=0.0)
    events: List[dict] = []
    for rec in spans:
        args = {
            "span_id": rec.get("span_id"),
            "parent_id": rec.get("parent_id"),
        }
        args.update(rec.get("attrs") or {})
        if rec.get("error"):
            args["error"] = rec["error"]
        events.append({
            "name": rec["name"],
            "cat": "span",
            "ph": "X",
            "ts": round((rec["t0_unix"] - t0) * 1e6, 1),
            "dur": round(rec["duration_s"] * 1e6, 1),
            "pid": rec.get("pid", 0),
            "tid": rec.get("pid", 0),
            "args": args,
        })
    for sample in samples:
        if sample.get("t_unix") is None or not sample.get("stack"):
            continue
        events.append({
            "name": sample["stack"][-1],
            "cat": "sample",
            "ph": "i",
            "s": "t",
            "ts": round((sample["t_unix"] - t0) * 1e6, 1),
            "pid": sample.get("pid") or 0,
            "tid": sample.get("pid") or 0,
            "args": {"span": sample.get("span"),
                     "span_id": sample.get("span_id")},
        })
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_attribution(spans: Sequence[dict], *, top: int = 20) -> str:
    """The self/cumulative span table, slowest cumulative first."""
    aggs = aggregate_spans(spans)
    lines = [
        f"  {'span':<26} {'count':>7} {'cum s':>10} {'self s':>10} "
        f"{'mean s':>10} {'max s':>10}"
    ]
    for agg in aggs[:top]:
        lines.append(
            f"  {agg['name']:<26} {agg['count']:>7} "
            f"{agg['total_s']:>10.4f} {agg['self_s']:>10.4f} "
            f"{agg['mean_s']:>10.4f} {agg['max_s']:>10.4f}"
        )
    if len(aggs) > top:
        lines.append(f"  ... and {len(aggs) - top} more span names")
    return "\n".join(lines)


def render_hot_stacks(samples: Sequence[dict], *, top: int = 5) -> str:
    """The most-sampled stacks, leaf-highlighted, count-descending."""
    folded = collapse_samples(samples)
    total = sum(folded.values())
    if not total:
        return "  (no samples recorded)"
    lines = []
    ranked = sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))
    for stack, count in ranked[:top]:
        frames = stack.split(";")
        lines.append(
            f"  {count:>6} ({100.0 * count / total:5.1f} %)  "
            f"{frames[-1]}  [{' > '.join(frames[:3])} > ...]"
        )
    return "\n".join(lines)


def render_memory_sites(sites: Sequence[dict], *, top: int = 10) -> str:
    """Top allocation sites recorded by the memory hooks."""
    if not sites:
        return "  (memory profiling off or no sites recorded)"
    ranked = sorted(sites, key=lambda s: (-s["kb"], s["site"]))[:top]
    return "\n".join(
        f"  {site['kb']:>10.1f} KiB {site['count']:>8} blocks  {site['site']}"
        for site in ranked
    )


def profile_timings(spans: Sequence[dict]) -> Dict[str, float]:
    """Per-span-name total wall time in ms, keyed ``span.<name>_ms``.

    The scalar trajectory appended to ``benchmarks/BENCH_history.jsonl``
    (via ``bench_history.py --append``), so span-level regressions show
    up in the same drift trail as the microbenchmarks.
    """
    return {
        f"span.{agg['name']}_ms": round(agg["total_s"] * 1e3, 3)
        for agg in aggregate_spans(spans)
    }


def write_profile_artifacts(
    out_dir,
    *,
    spans: Sequence[dict],
    profiler=None,
    command: str = "",
) -> Dict[str, Path]:
    """Write ``profile.collapsed`` + ``trace.json`` + ``profile_timings.json``.

    Returns the artifact paths.  The timings file is the
    ``bench_history.py --append`` input: ``{"timings": {...}}`` plus the
    sample accounting for context.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    samples = profiler.samples if profiler is not None else []
    paths = {}
    collapsed = out / "profile.collapsed"
    collapsed.write_text(to_collapsed(samples))
    paths["collapsed"] = collapsed
    trace_path = out / "trace.json"
    trace_path.write_text(
        json.dumps(to_chrome_trace(spans, samples)) + "\n"
    )
    paths["chrome_trace"] = trace_path
    timings_path = out / "profile_timings.json"
    timings_path.write_text(json.dumps({
        "command": command,
        "sample_count": (
            profiler.sample_count if profiler is not None else 0
        ),
        "samples_dropped": profiler.dropped if profiler is not None else 0,
        "timings": profile_timings(spans),
    }, indent=2, sort_keys=True) + "\n")
    paths["timings"] = timings_path
    return paths
