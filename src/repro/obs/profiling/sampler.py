"""Span-linked profilers: sampling stacks, exact functions, memory.

Three instruments, all stdlib-only, all observational (nothing here can
change a pipeline output bit):

* :class:`SamplingProfiler` — a wall-clock stack sampler.  A daemon
  thread wakes every ``interval_s``, grabs the profiled thread's frame
  via ``sys._current_frames()``, and records the stack root-first
  together with the tracer's innermost active span at that instant, so
  every sample is attributable to a span (``span:experiment.table5;...``
  in the flamegraph).  Accounting is in **sample counts**: every sample
  has weight 1 and every aggregation is a deterministic function of the
  recorded sample list, which is what makes merged profiles
  worker-count invariant the same way spans are — worker payloads fold
  back in chunk order via :meth:`SamplingProfiler.absorb_state`.
* :class:`ExactProfiler` — a :mod:`cProfile` wrapper for exact
  per-function call counts and self/cumulative times.  Deterministic
  profiling traps every call/return, so it is opt-in
  (``repro obs profile --exact``) and never runs in workers.
* :class:`MemoryHooks` — :mod:`tracemalloc`-based per-span memory
  accounting, installed as the tracer's span hooks: each finished span
  gains ``mem_net_kb`` (exact net allocation delta) and ``mem_peak_kb``
  (high-water mark since span entry) attributes, and profiler stop
  captures the top allocation sites of the whole profiled window.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import threading
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional

from ..trace import Tracer

#: Stack depth cap: recursion beyond this keeps the leafmost frames and
#: marks the root side ``<truncated>``.
DEFAULT_MAX_DEPTH = 128


def frame_label(frame) -> str:
    """Compact, space-free frame name for collapsed-stack lines."""
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


class SamplingProfiler:
    """Samples the profiled thread's stack, tagged with the active span.

    ``start()`` captures the calling thread as the profiling target and
    launches the sampler thread; ``sample_once()`` takes one sample
    synchronously and is the deterministic driver the tests (and any
    code that wants exact sample placement) use.  The recorded state is
    bounded: at most ``max_samples`` samples are kept, the rest are
    counted in ``dropped`` while ``sample_count`` keeps the exact total.
    """

    def __init__(
        self,
        *,
        tracer: Optional[Tracer] = None,
        interval_s: float = 0.005,
        memory: bool = False,
        max_samples: int = 200_000,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        self.tracer = tracer
        self.interval_s = float(interval_s)
        self.memory = bool(memory)
        self.max_samples = int(max_samples)
        self.max_depth = int(max_depth)
        self.samples: List[dict] = []
        self.sample_count = 0
        self.dropped = 0
        self.memory_sites: List[dict] = []
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._mem = MemoryHooks() if memory else None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread; idempotent."""
        if self._thread is not None:
            return self
        self._target_ident = threading.get_ident()
        if self._mem is not None:
            self._mem.install(self.tracer)
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.sample_once()

    def stop(self) -> "SamplingProfiler":
        """Stop the sampler thread and seal memory stats; idempotent."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
        if self._mem is not None and self._mem.installed:
            self._mem.uninstall(self.tracer)
            self.memory_sites = list(self._mem.sites)
        return self

    # -- sampling -----------------------------------------------------------------

    def sample_once(self, *, t_unix: Optional[float] = None) -> Optional[dict]:
        """Take one sample of the target thread now (or the caller's).

        Called from the sampler thread this captures the target's
        in-flight stack; called from the profiled thread itself (the
        deterministic test driver) it captures the caller's stack with
        this function's own frame pruned.
        """
        ident = (
            self._target_ident
            if self._target_ident is not None
            else threading.get_ident()
        )
        frame = sys._current_frames().get(ident)
        if frame is None:
            return None
        if ident == threading.get_ident():
            frame = frame.f_back
        stack = self._stack_of(frame)
        if not stack:
            return None
        self.sample_count += 1
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return None
        tracer = self.tracer
        sample = {
            "t_unix": time.time() if t_unix is None else t_unix,
            "pid": tracer.pid if tracer is not None else None,
            "stack": stack,
            "span": tracer.active_span_name if tracer is not None else None,
            "span_id": tracer.active_span_id if tracer is not None else None,
        }
        self.samples.append(sample)
        return sample

    def _stack_of(self, frame) -> List[str]:
        labels: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            labels.append(frame_label(frame))
            frame = frame.f_back
            depth += 1
        if frame is not None:
            labels.append("<truncated>")
        labels.reverse()
        return labels

    # -- cross-process merge ------------------------------------------------------

    def export_config(self) -> dict:
        """Picklable constructor kwargs for a worker-side profiler."""
        return {
            "interval_s": self.interval_s,
            "max_samples": self.max_samples,
            "max_depth": self.max_depth,
        }

    def state_dict(self) -> dict:
        """Picklable snapshot shipped from workers back to the parent."""
        return {
            "samples": self.samples,
            "sample_count": self.sample_count,
            "dropped": self.dropped,
            "memory_sites": self.memory_sites,
        }

    def absorb_state(self, state: dict) -> None:
        """Fold a worker's :meth:`state_dict` in (chunk order = call order)."""
        incoming = state.get("samples", [])
        room = max(0, self.max_samples - len(self.samples))
        self.samples.extend(incoming[:room])
        self.dropped += state.get("dropped", 0) + max(0, len(incoming) - room)
        self.sample_count += state.get("sample_count", len(incoming))
        self.memory_sites.extend(state.get("memory_sites", []))


class ExactProfiler:
    """Exact per-function profile via the deterministic :mod:`cProfile`.

    Complements the sampler: where sampling answers "which stacks is
    wall time under" statistically, this traps every call/return for
    exact call counts and self/cumulative times per function — at
    deterministic-profiling overhead, so results measure *relative* cost
    and the sampler stays the honest wall-clock instrument.
    """

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._running = False

    def start(self) -> "ExactProfiler":
        if not self._running:
            self._profile.enable()
            self._running = True
        return self

    def stop(self) -> "ExactProfiler":
        if self._running:
            self._profile.disable()
            self._running = False
        return self

    def function_table(self, *, top: int = 20) -> List[dict]:
        """Rows of ``{function, ncalls, self_s, cum_s}``, self-time first."""
        stats = pstats.Stats(self._profile)
        rows = []
        for (filename, _lineno, name), entry in stats.stats.items():
            _cc, ncalls, tottime, cumtime, _callers = entry
            rows.append({
                "function": f"{Path(filename).stem}.{name}",
                "ncalls": ncalls,
                "self_s": tottime,
                "cum_s": cumtime,
            })
        rows.sort(key=lambda r: (-r["self_s"], r["function"]))
        return rows[:top]


class MemoryHooks:
    """Per-span tracemalloc deltas + run-level top allocation sites.

    Installed via :meth:`Tracer.set_hooks` while memory profiling is on.
    Span entry records the currently traced bytes and resets the peak
    counter; span exit stamps ``mem_net_kb`` (exact) and ``mem_peak_kb``
    (high-water mark since the *innermost* entry — nested spans each
    reset the shared peak counter, so a parent's peak covers the stretch
    since its last child entered; exact nets always add up) into the
    span attributes, where they land in the finished record and the
    manifest.
    """

    def __init__(self, *, top: int = 10) -> None:
        self.top = top
        self.sites: List[dict] = []
        self.installed = False
        self._open: Dict[str, int] = {}
        self._started_tracing = False

    def install(self, tracer: Optional[Tracer]) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        if tracer is not None:
            tracer.set_hooks(self)
        self.installed = True

    def uninstall(self, tracer: Optional[Tracer]) -> None:
        if tracer is not None:
            tracer.set_hooks(None)
        if tracemalloc.is_tracing():
            stats = tracemalloc.take_snapshot().statistics("lineno")
            self.sites = [
                {
                    "site": str(stat.traceback),
                    "kb": round(stat.size / 1024.0, 1),
                    "count": stat.count,
                }
                for stat in stats[: self.top]
            ]
            if self._started_tracing:
                tracemalloc.stop()
        self.installed = False

    # -- tracer hook protocol -----------------------------------------------------

    def on_enter(self, span) -> None:
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        self._open[span.span_id] = current

    def on_exit(self, span) -> None:
        base = self._open.pop(span.span_id, None)
        if base is None:
            return
        current, peak = tracemalloc.get_traced_memory()
        span.attrs["mem_net_kb"] = round((current - base) / 1024.0, 1)
        span.attrs["mem_peak_kb"] = round(max(0, peak - base) / 1024.0, 1)
