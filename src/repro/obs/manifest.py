"""Run manifests: provenance, timings, digests, metrics, and trace.

A manifest is one JSON document answering "what exactly produced this
artifact": the experiment configuration and seed, the package versions
and git revision the code ran at, wall/CPU time, a SHA-256 digest of
every output file, the metric snapshot, and the finished spans.  One is
written alongside every experiment artifact when observability is on,
so a wrong Table V number (or a perf regression) can be traced without
re-running anything.

:func:`diff_manifests` compares two runs and flags *provenance drift*
(config, versions, git revision, or output digests changed) and
*timing drift* (per-span-name total durations moved beyond a
tolerance) — the substance of ``repro obs diff``.
"""

from __future__ import annotations

import hashlib
import json
import math
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ObservabilityError
from . import runtime
from .trace import aggregate_spans

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

_TRACKED_PACKAGES = ("numpy", "scipy", "networkx")


def _package_versions() -> Dict[str, str]:
    versions = {
        "python": platform.python_version(),
    }
    try:
        from .. import __version__

        versions["repro"] = __version__
    except Exception:
        pass
    for name in _TRACKED_PACKAGES:
        try:
            module = __import__(name)
            versions[name] = str(getattr(module, "__version__", "unknown"))
        except Exception:
            versions[name] = "absent"
    return versions


def _git_revision() -> Dict[str, object]:
    """Best-effort git provenance of the source tree (never raises)."""
    root = Path(__file__).resolve().parent
    out: Dict[str, object] = {"sha": None, "dirty": None}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=5,
        )
        if sha.returncode == 0:
            out["sha"] = sha.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], cwd=root,
                capture_output=True, text=True, timeout=5,
            )
            if status.returncode == 0:
                out["dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return out


def digest_file(path) -> Dict[str, object]:
    """SHA-256 + size of one output artifact."""
    data = Path(path).read_bytes()
    return {"sha256": hashlib.sha256(data).hexdigest(), "bytes": len(data)}


def _finite(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _sanitize(obj):
    """Replace non-finite floats (watermark sentinels) for strict JSON."""
    if isinstance(obj, dict):
        return {k: _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    return _finite(obj)


@dataclass
class RunManifest:
    """In-memory form of one manifest document."""

    command: str
    config: dict = field(default_factory=dict)
    outputs: Dict[str, dict] = field(default_factory=dict)
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    metrics: dict = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    spans_dropped: int = 0
    created_unix: float = field(default_factory=time.time)
    versions: Dict[str, str] = field(default_factory=_package_versions)
    git: Dict[str, object] = field(default_factory=_git_revision)
    platform: str = field(default_factory=platform.platform)
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> dict:
        return _sanitize({
            "schema": self.schema,
            "command": self.command,
            "created_unix": self.created_unix,
            "config": self.config,
            "versions": self.versions,
            "git": self.git,
            "platform": self.platform,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "outputs": self.outputs,
            "metrics": self.metrics,
            "spans": self.spans,
            "spans_dropped": self.spans_dropped,
        })

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def build_manifest(
    *,
    command: str,
    config: Optional[dict] = None,
    outputs: Sequence = (),
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    spans: Optional[List[dict]] = None,
) -> RunManifest:
    """Assemble a manifest from the current observability state.

    ``outputs`` are artifact paths to digest.  ``spans`` restricts the
    trace to an explicit slice (per-experiment manifests); by default
    the full finished-span list of the live tracer is embedded.
    """
    st = runtime.state()
    metrics = st.registry.to_dict() if st is not None else {}
    if spans is None:
        spans = list(st.tracer.finished) if st is not None else []
    dropped = st.tracer.dropped if st is not None else 0
    digests = {}
    for path in outputs:
        p = Path(path)
        if p.exists():
            digests[p.name] = digest_file(p)
    return RunManifest(
        command=command,
        config=dict(config or {}),
        outputs=digests,
        wall_s=wall_s,
        cpu_s=cpu_s,
        metrics=metrics,
        spans=spans,
        spans_dropped=dropped,
    )


def load_manifest(path) -> dict:
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ObservabilityError(f"{path} is not a run manifest")
    if doc["schema"] > MANIFEST_SCHEMA:
        raise ObservabilityError(
            f"manifest schema {doc['schema']} is newer than this code "
            f"understands ({MANIFEST_SCHEMA})"
        )
    return doc


# -- reporting -------------------------------------------------------------------


def _counter_lines(metrics: dict) -> List[str]:
    lines = []
    for name, fam in sorted(metrics.items()):
        if fam["kind"] == "histogram":
            for entry in fam["series"]:
                label = "".join(
                    f"{{{k}={v}}}" for k, v in sorted(
                        entry["labels"].items()
                    )
                )
                lines.append(
                    f"  {name}{label:<30} count {entry['count']:>10} "
                    f"sum {entry['sum']:.3f}"
                )
            continue
        for entry in fam["series"]:
            label = "".join(
                f"{{{k}={v}}}" for k, v in sorted(entry["labels"].items())
            )
            value = entry["value"]
            if value is None:
                continue
            lines.append(f"  {name}{label:<30} {value:>14g}")
    return lines


def summarize_manifest(doc: dict, *, top: int = 15) -> str:
    """Human-readable digest: provenance, slowest spans, counters."""
    lines = [
        f"manifest: {doc.get('command', '?')}",
        f"  created   {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(doc.get('created_unix', 0)))}",
        f"  git       {doc.get('git', {}).get('sha') or 'unknown'}"
        + (" (dirty)" if doc.get("git", {}).get("dirty") else ""),
        f"  platform  {doc.get('platform', '?')}",
        "  versions  " + ", ".join(
            f"{k} {v}" for k, v in sorted(doc.get("versions", {}).items())
        ),
    ]
    if doc.get("wall_s") is not None:
        lines.append(
            f"  time      {doc['wall_s']:.2f} s wall"
            + (
                f", {doc['cpu_s']:.2f} s cpu"
                if doc.get("cpu_s") is not None
                else ""
            )
        )
    config = doc.get("config") or {}
    if config:
        lines.append("  config    " + ", ".join(
            f"{k}={v}" for k, v in sorted(config.items())
        ))
    outputs = doc.get("outputs") or {}
    if outputs:
        lines.append("outputs:")
        for name, meta in sorted(outputs.items()):
            lines.append(
                f"  {name:<28} {meta['bytes']:>9} B  sha256 "
                f"{meta['sha256'][:16]}…"
            )
    spans = doc.get("spans") or []
    if spans:
        aggs = aggregate_spans(spans)
        lines.append(
            f"slowest spans ({len(spans)} recorded"
            + (
                f", {doc['spans_dropped']} dropped"
                if doc.get("spans_dropped")
                else ""
            )
            + "):"
        )
        lines.append(
            f"  {'span':<26} {'count':>7} {'total s':>10} "
            f"{'self s':>10} {'mean s':>10} {'max s':>10}"
        )
        for agg in aggs[:top]:
            lines.append(
                f"  {agg['name']:<26} {agg['count']:>7} "
                f"{agg['total_s']:>10.4f} {agg['self_s']:>10.4f} "
                f"{agg['mean_s']:>10.4f} {agg['max_s']:>10.4f}"
            )
        # The attribution view: exclusive time names the span whose own
        # code burns the cycles, not the ancestor that contains it.
        hot = sorted(aggs, key=lambda a: a["self_s"], reverse=True)
        hot = [agg for agg in hot if agg["self_s"] > 0.0][: min(top, 5)]
        if hot:
            lines.append("hottest spans (self time):")
            for agg in hot:
                share = (
                    100.0 * agg["self_s"] / agg["total_s"]
                    if agg["total_s"] > 0
                    else 0.0
                )
                lines.append(
                    f"  {agg['name']:<26} {agg['self_s']:>10.4f} s "
                    f"({share:5.1f} % of its own total)"
                )
    metrics = doc.get("metrics") or {}
    counter_lines = _counter_lines(metrics)
    if counter_lines:
        lines.append("metrics:")
        lines.extend(counter_lines)
    return "\n".join(lines)


@dataclass
class ManifestDiff:
    """Outcome of comparing two manifests."""

    provenance_drift: List[str] = field(default_factory=list)
    timing_drift: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.provenance_drift and not self.timing_drift

    def render(self) -> str:
        if self.clean and not self.notes:
            return "manifests match: no provenance or timing drift"
        lines = []
        if self.provenance_drift:
            lines.append("provenance drift:")
            lines.extend(f"  {line}" for line in self.provenance_drift)
        if self.timing_drift:
            lines.append("timing drift:")
            lines.extend(f"  {line}" for line in self.timing_drift)
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  {line}" for line in self.notes)
        return "\n".join(lines)


def diff_manifests(a: dict, b: dict, *,
                   timing_tolerance_pct: float = 25.0) -> ManifestDiff:
    """Flag provenance and timing drift between two manifests.

    Provenance drift: differing config values, package versions, git
    revision, or output digests.  Timing drift: a span name whose total
    duration moved by more than ``timing_tolerance_pct`` (only spans
    totalling >= 1 ms are compared; faster ones are timer noise).
    """
    diff = ManifestDiff()

    for field_name in ("config", "versions"):
        av, bv = a.get(field_name) or {}, b.get(field_name) or {}
        for key in sorted(set(av) | set(bv)):
            if av.get(key) != bv.get(key):
                diff.provenance_drift.append(
                    f"{field_name}.{key}: {av.get(key)!r} -> {bv.get(key)!r}"
                )
    a_sha, b_sha = (m.get("git", {}).get("sha") for m in (a, b))
    if a_sha != b_sha:
        diff.provenance_drift.append(f"git.sha: {a_sha} -> {b_sha}")

    a_out, b_out = a.get("outputs") or {}, b.get("outputs") or {}
    for name in sorted(set(a_out) | set(b_out)):
        if name not in a_out:
            diff.provenance_drift.append(f"output {name}: only in second run")
        elif name not in b_out:
            diff.provenance_drift.append(f"output {name}: only in first run")
        elif a_out[name]["sha256"] != b_out[name]["sha256"]:
            diff.provenance_drift.append(
                f"output {name}: digest changed "
                f"({a_out[name]['sha256'][:12]}… -> "
                f"{b_out[name]['sha256'][:12]}…)"
            )

    a_spans = {x["name"]: x for x in aggregate_spans(a.get("spans") or [])}
    b_spans = {x["name"]: x for x in aggregate_spans(b.get("spans") or [])}
    for name in sorted(set(a_spans) | set(b_spans)):
        if name not in a_spans or name not in b_spans:
            diff.notes.append(
                f"span {name}: only in "
                + ("second" if name not in a_spans else "first")
                + " run"
            )
            continue
        at, bt = a_spans[name]["total_s"], b_spans[name]["total_s"]
        if max(at, bt) < 1e-3:
            continue
        change_pct = 100.0 * (bt - at) / at if at > 0 else float("inf")
        if abs(change_pct) > timing_tolerance_pct:
            diff.timing_drift.append(
                f"span {name}: total {at:.4f} s -> {bt:.4f} s "
                f"({change_pct:+.1f} %)"
            )
    return diff


def write_run_artifacts(
    obs_dir,
    *,
    command: str,
    config: Optional[dict] = None,
    outputs: Sequence = (),
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    basename: str = "manifest",
) -> Dict[str, Path]:
    """Write ``<basename>.json`` + ``metrics.prom`` under ``obs_dir``.

    The Prometheus text dump duplicates the manifest's metric snapshot
    in the format scrapers and CI artifact viewers expect.
    """
    obs_dir = Path(obs_dir)
    obs_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(
        command=command, config=config, outputs=outputs,
        wall_s=wall_s, cpu_s=cpu_s,
    )
    paths = {"manifest": manifest.write(obs_dir / f"{basename}.json")}
    st = runtime.state()
    if st is not None:
        prom = obs_dir / "metrics.prom"
        prom.write_text(st.registry.to_prometheus())
        paths["metrics"] = prom
    return paths
