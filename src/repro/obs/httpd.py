"""Shared stdlib HTTP-service lifecycle.

Both the health exporter (:mod:`repro.obs.health.server`) and the
control-plane API (:mod:`repro.serve.http`) are the same machine: a
``ThreadingHTTPServer`` bound once, served from a daemon thread, shut
down by joining that thread and closing the listening socket.  Before
this module each server carried its own copy of that lifecycle, and the
copies could drift (port-0 resolution, double-close, bind-failure
reporting).  :class:`HttpService` is the single implementation:

* ``port=0`` binds an ephemeral port; :attr:`port` reads the *bound*
  port back after :meth:`start`;
* :meth:`start` is idempotent, bind failures raise the subclass's
  :attr:`error_class` with a uniform message;
* :meth:`close` is idempotent and safe from any thread: it stops the
  accept loop, joins the serving thread, and releases the socket, so
  tests never leak ports;
* the context-manager form (``with service: ...``) guarantees the
  close on every exit path.

Subclasses provide a request handler class plus :meth:`_configure`,
which attaches whatever state the handler reads onto the bound server
object (the ``http.server`` idiom for passing state to handlers).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple, Type

from ..errors import ObservabilityError


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Request handler base: quiet logs, framed JSON/text responses.

    ``protocol_version`` is HTTP/1.1 so keep-alive works — every
    response therefore *must* carry an accurate ``Content-Length``,
    which :meth:`_send` guarantees.
    """

    protocol_version = "HTTP/1.1"
    # Status+headers+body leave in one segment (the base handler
    # flushes per request): a buffered wfile plus TCP_NODELAY avoids
    # the Nagle/delayed-ACK stall a two-segment response can hit —
    # which would put a flat ~40 ms floor under the latency tail.
    wbufsize = -1
    disable_nagle_algorithm = True

    #: Largest request body accepted; anything bigger is refused
    #: unread (the connection is closed rather than the body drained,
    #: so a hostile client cannot make the server buffer a gigabyte).
    max_body_bytes = 1 << 20

    # Machine-facing endpoints; request logging is noise.
    def log_message(self, fmt, *args):  # noqa: ARG002
        pass

    def _send_error_500(self, exc: BaseException) -> None:
        """Last-resort answer for an unexpected handler exception.

        Counts the crash on the bound server (``handler_errors`` plus
        the optional ``on_handler_error`` hook) and answers a framed
        500, so a bug in one route neither kills the keep-alive
        connection silently nor hides from the metrics.
        """
        server = self.server
        server.handler_errors = getattr(server, "handler_errors", 0) + 1
        hook = getattr(server, "on_handler_error", None)
        if hook is not None:
            hook(self.path, exc)
        try:
            self._send_json(
                500,
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    def _send_bytes(
        self, status: int, content_type: str, payload: bytes
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            # Tell keep-alive clients the truth (e.g. after a refused
            # oversized body the unread bytes make reuse unsafe).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _send(self, status: int, content_type: str, body: str) -> None:
        self._send_bytes(status, content_type, body.encode())

    def _send_json(self, status: int, doc: dict) -> None:
        self._send(
            status, "application/json",
            json.dumps(doc, indent=2) + "\n",
        )

    def _read_json_body(self) -> dict:
        """The request body as a JSON object ({} when absent/malformed).

        Bodies larger than :attr:`max_body_bytes` are refused without
        reading: the connection is marked for close (keep-alive framing
        would otherwise desynchronize on the unread bytes) and the
        request proceeds as if no body arrived.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            return {}
        if length > self.max_body_bytes:
            self.close_connection = True
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {}
        return doc if isinstance(doc, dict) else {}


class HttpService:
    """One ``ThreadingHTTPServer`` on a daemon thread, closed cleanly."""

    #: Raised on bind failure and when :attr:`port` is read while down.
    error_class: Type[Exception] = ObservabilityError
    #: Handler class bound to the server (subclass responsibility).
    handler_class: Type[BaseHTTPRequestHandler] = JsonRequestHandler
    #: Human name used in error messages and the thread name.
    service_name: str = "http service"

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def _configure(self, server: ThreadingHTTPServer) -> None:
        """Attach handler-visible state to the bound server object."""

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "HttpService":
        if self._server is not None:
            return self
        try:
            server = ThreadingHTTPServer(
                (self.host, self._requested_port), self.handler_class
            )
        except OSError as exc:
            raise self.error_class(
                f"cannot bind {self.service_name} on {self.host}:"
                f"{self._requested_port}: {exc}"
            ) from exc
        server.daemon_threads = True
        server.handler_errors = 0
        server.on_handler_error = None
        self._configure(server)
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-{self.service_name.replace(' ', '-')}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, join the thread, release the socket."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def __enter__(self) -> "HttpService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def handler_errors(self) -> int:
        """Unexpected handler exceptions answered with a 500 so far."""
        server = self._server
        return getattr(server, "handler_errors", 0) if server else 0

    # -- addressing ---------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise self.error_class(f"{self.service_name} is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def fetch_url(
    url: str, *, timeout_s: float = 5.0,
    error_class: Type[Exception] = ObservabilityError,
) -> Tuple[int, str]:
    """GET one endpoint; returns ``(status, body)`` without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise error_class(f"cannot reach {url}: {exc}") from exc


def post_url(
    url: str, doc: Optional[dict] = None, *, timeout_s: float = 5.0,
    error_class: Type[Exception] = ObservabilityError,
) -> Tuple[int, str]:
    """POST a JSON body; returns ``(status, body)`` without raising on 4xx/5xx."""
    payload = json.dumps(doc if doc is not None else {}).encode()
    req = urllib.request.Request(
        url, data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise error_class(f"cannot reach {url}: {exc}") from exc
