"""Process-safe structured event log with correlation enrichment.

The :class:`EventLog` is the third pillar of the observability triad:
a bounded ring of schema'd event records that every layer of the system
emits into — window seals, cap decisions, policy mutations, checkpoint
writes, alert transitions, incident lifecycles.  Records are plain
dicts (JSON- and pickle-ready) carrying correlation ids that join the
log back to the other pillars: ``trace_id``/``span_id`` from the active
:class:`~repro.obs.trace.Tracer` span, ``window`` for the event-time
window index, ``cap_version`` for the published decision in force, and
``incident`` for forensic bundles.

Determinism contract
--------------------
Every record gets a global ``seq`` (emission order) and a per-event
occurrence id ``{event}:{n}``.  Window-correlated events (window seals,
detector findings, incident open/resolve) occur once per window in fold
order, so their ids — and therefore the log slice a forensic bundle
embeds — are invariant under rerun, re-chunking, and worker count.
Cadence-driven events (snapshot publishes, requests) are not, which is
why bundle slices select only records carrying a ``window`` id.

Rate limiting and sampling are event-time driven and clock-free: the
token bucket refills from the ``t_s`` carried by each emission, and the
deterministic sampler hashes the per-event occurrence number, so two
identical runs keep and drop exactly the same records.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from typing import Callable, List, Optional, Tuple

from ...errors import LogError
from .. import runtime as _runtime
from .store import LogStore

#: Severity names, least to most severe.
SEVERITIES = ("debug", "info", "warning", "error", "critical")
#: Name -> numeric code (higher = more severe).
SEVERITY_CODE = {name: code * 10 + 10 for code, name in enumerate(SEVERITIES)}

#: Default per-event token buckets ``{event: (rate_per_s, burst)}`` for
#: the spiky emitters; one line per event-time minute with small bursts.
DEFAULT_RATE_LIMITS = {
    "stream.late_drop": (1.0 / 60.0, 5.0),
    "stream.duplicates": (1.0 / 60.0, 5.0),
    "serve.request": (1.0, 20.0),
}

#: Correlation-id keyword arguments accepted by :meth:`EventLog.emit`,
#: stored under the same key when not ``None``.
_CORRELATION_KEYS = ("trace_id", "span_id", "window", "node", "job",
                     "shard", "unit", "incident", "cap_version")

#: Feed signature shared with forensics/history:
#: () -> (cap_w, objective, published_version, frontier_s).
DecisionFeed = Callable[[], Tuple[Optional[float], Optional[str],
                                  Optional[int], Optional[float]]]


class TokenBucket:
    """Event-time token bucket: clock-free, deterministic, per-key.

    Refills ``rate`` tokens per *event-time* second from the ``t_s``
    stamped on each emission, capped at ``burst``.  Out-of-order event
    times never drain the bucket backwards: elapsed time below zero
    counts as zero.
    """

    __slots__ = ("rate", "burst", "tokens", "t_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise LogError("token bucket needs rate > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.t_last: Optional[float] = None

    def allow(self, t_s: float) -> bool:
        if self.t_last is not None:
            elapsed = t_s - self.t_last
            if elapsed > 0.0:
                self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
                self.t_last = t_s
        else:
            self.t_last = t_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class LogView:
    """Frozen read handle over the ring at publish time.

    Served ``/v1/logs`` responses are built from the view a
    :class:`~repro.serve.cache.ServeView` captured at refresh, so the
    bytes a route returns stay stable until the next publish even while
    the live log keeps emitting.
    """

    __slots__ = ("records", "emitted", "suppressed", "sampled_out",
                 "evicted")

    def __init__(self, records: Tuple[dict, ...], *, emitted: int,
                 suppressed: int, sampled_out: int, evicted: int) -> None:
        self.records = records
        self.emitted = emitted
        self.suppressed = suppressed
        self.sampled_out = sampled_out
        self.evicted = evicted


class EventLog:
    """Bounded, rate-limited, correlation-enriched event ring.

    Thread-safe: one lock serializes emission, so request handlers,
    the ingest loop, and the refresh thread can all emit concurrently.
    Attach to a :class:`~repro.stream.engine.StreamEngine` via
    ``engine.attach_log(log)`` — the facade then emits window-seal and
    late-drop/duplicate-spike events per sealed window and contributes
    ``log_*`` metric values.  An optional :class:`LogStore` persists
    every kept record to rotated JSONL segments.
    """

    def __init__(self, *, capacity: int = 4096, level: str = "debug",
                 store: Optional[LogStore] = None,
                 rate_limits: Optional[dict] = None,
                 sample: Optional[dict] = None,
                 enabled: bool = True) -> None:
        if level not in SEVERITY_CODE:
            raise LogError(
                f"unknown severity {level!r}; choose from {SEVERITIES}"
            )
        if capacity < 1:
            raise LogError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.level = level
        self.level_code = SEVERITY_CODE[level]
        self.store = store
        self.enabled = enabled
        limits = DEFAULT_RATE_LIMITS if rate_limits is None else rate_limits
        self._limits = {k: (float(r), float(b)) for k, (r, b) in limits.items()}
        self._sample = {k: int(n) for k, n in (sample or {}).items()}
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self._attempts: dict = {}      # event -> emission attempts (ids)
        self._buckets: dict = {}       # event -> TokenBucket
        self._pending_suppressed: dict = {}
        self.emitted = 0
        self.suppressed = 0
        self.sampled_out = 0
        self.evicted = 0
        self.filtered = 0
        # Engine-facade state.
        self._decision_feed: Optional[DecisionFeed] = None
        self._interval_s = 1.0
        self._windows = 0
        self._prev_late = 0
        self._prev_dup = 0
        self._engine = None

    # -- emission -----------------------------------------------------

    def emit(self, severity: str, event: str, msg: str = "", *,
             t_s: float = 0.0, trace_id=None, span_id=None, window=None,
             node=None, job=None, shard=None, unit=None, incident=None,
             cap_version=None, **fields) -> Optional[dict]:
        """Emit one record; returns it, or ``None`` when dropped.

        Drops happen for four reasons, each counted separately:
        disabled log, severity below ``level`` (``filtered``),
        deterministic sampling (``sampled_out``), and token-bucket rate
        limiting (``suppressed``).  The first record accepted after a
        suppression run carries a ``suppressed`` count so readers can
        see the gap.
        """
        if not self.enabled:
            return None
        sev = SEVERITY_CODE.get(severity)
        if sev is None:
            raise LogError(
                f"unknown severity {severity!r}; choose from {SEVERITIES}"
            )
        with self._lock:
            if sev < self.level_code:
                self.filtered += 1
                return None
            attempt = self._attempts.get(event, 0) + 1
            self._attempts[event] = attempt
            keep_1_in = self._sample.get(event)
            if keep_1_in is not None and keep_1_in > 1:
                if zlib.crc32(f"{event}:{attempt}".encode()) % keep_1_in:
                    self.sampled_out += 1
                    return None
            limit = self._limits.get(event)
            if limit is not None:
                bucket = self._buckets.get(event)
                if bucket is None:
                    bucket = self._buckets[event] = TokenBucket(*limit)
                if not bucket.allow(t_s):
                    self.suppressed += 1
                    self._pending_suppressed[event] = (
                        self._pending_suppressed.get(event, 0) + 1
                    )
                    return None
            if trace_id is None and span_id is None:
                st = _runtime._STATE
                if st is not None:
                    span_id = st.tracer.active_span_id
                    trace_id = st.tracer.trace_id
            record = {
                "seq": self._seq,
                "id": f"{event}:{attempt}",
                "t_s": float(t_s),
                "severity": severity,
                "event": event,
                "msg": msg,
            }
            for key, value in (
                ("trace_id", trace_id), ("span_id", span_id),
                ("window", window), ("node", node), ("job", job),
                ("shard", shard), ("unit", unit), ("incident", incident),
                ("cap_version", cap_version),
            ):
                if value is not None:
                    record[key] = value
            if fields:
                record["fields"] = fields
            pending = self._pending_suppressed.pop(event, 0)
            if pending:
                record["suppressed"] = pending
            self._append(record)
            return record

    def _append(self, record: dict) -> None:
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)
        self.emitted += 1
        if self.store is not None:
            self.store.append(record)

    # -- worker folding -----------------------------------------------

    def export_config(self) -> dict:
        """Picklable constructor kwargs for a worker-side sibling log."""
        return {
            "capacity": self.capacity,
            "level": self.level,
            "rate_limits": dict(self._limits),
            "sample": dict(self._sample),
        }

    def drain(self) -> List[dict]:
        """Worker side: hand over (and clear) the ring for the payload."""
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
            return records

    def absorb(self, records) -> None:
        """Fold worker records in, re-sequencing in canonical fold order.

        ``seq`` and the per-event occurrence id are re-assigned from
        this log's counters so that — because
        :func:`repro.parallel.chunked_map` absorbs payloads in chunk
        order — the folded stream is worker-count invariant.  Sampling
        and rate limiting were already applied worker-side and are not
        re-applied.
        """
        if not records:
            return
        with self._lock:
            for rec in records:
                rec = dict(rec)
                event = rec.get("event", "")
                attempt = self._attempts.get(event, 0) + 1
                self._attempts[event] = attempt
                rec["seq"] = self._seq
                rec["id"] = f"{event}:{attempt}"
                self._append(rec)

    # -- engine facade ------------------------------------------------

    def bind_engine(self, engine) -> None:
        """Adopt engine geometry and counter baselines (attach-time)."""
        self._engine = engine
        self._interval_s = engine.buffer.interval_s
        self._prev_late = engine.buffer.late_dropped
        self._prev_dup = engine.buffer.duplicates

    def set_decision_feed(self, feed: Optional[DecisionFeed]) -> None:
        """Wire the control-plane feed that stamps ``cap_version``."""
        self._decision_feed = feed

    def observe_window(self, window) -> None:
        """Per sealed window: a seal event plus late/duplicate spikes."""
        index = self._windows
        self._windows += 1
        t_end = float(window.time_s.max()) + self._interval_s
        cap = version = None
        if self._decision_feed is not None:
            cap, _objective, version, _frontier = self._decision_feed()
        self.emit(
            "info", "stream.window_seal",
            f"window {index} sealed ({window.time_s.shape[0]} samples)",
            t_s=t_end, window=index, cap_version=version,
            samples=int(window.time_s.shape[0]),
            **({} if cap is None else {"cap_w": float(cap)}),
        )
        if self._engine is not None:
            buf = self._engine.buffer
            late = buf.late_dropped - self._prev_late
            dup = buf.duplicates - self._prev_dup
            self._prev_late = buf.late_dropped
            self._prev_dup = buf.duplicates
            if late > 0:
                self.emit("warning", "stream.late_drop",
                          f"{late} late samples dropped", t_s=t_end,
                          window=index, dropped=int(late))
            if dup > 0:
                self.emit("warning", "stream.duplicates",
                          f"{dup} duplicate samples discarded", t_s=t_end,
                          window=index, duplicates=int(dup))

    def alert_transition(self, event: dict) -> None:
        """AlertEngine transition listener -> one log record."""
        severity = "critical" if event.get("severity") == "page" else "warning"
        if event.get("transition") == "resolved":
            severity = "info"
        self.emit(
            severity, "alert.transition",
            f"{event.get('rule')} {event.get('transition')}",
            t_s=float(event.get("t_s", 0.0)),
            rule=event.get("rule"),
            transition=event.get("transition"),
            value=event.get("value"),
        )

    def metric_values(self) -> dict:
        values = {
            "log_events_total": float(self.emitted),
            "log_suppressed_total": float(self.suppressed),
            "log_sampled_out_total": float(self.sampled_out),
            "log_evicted_total": float(self.evicted),
        }
        if self.store is not None:
            values.update(self.store.metric_values())
        return values

    def finalize(self) -> None:
        """Flush the attached store (drain-time hook)."""
        if self.store is not None:
            self.store.sync()

    # -- reading ------------------------------------------------------

    def records(self) -> List[dict]:
        """Snapshot of the resident ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def window_slice(self, first: int, last: int) -> List[dict]:
        """Window-correlated records with ``first <= window <= last``.

        Only records carrying a ``window`` id are eligible: those are
        the chunking- and rerun-invariant streams, so the slice a
        forensic bundle embeds has deterministic event ids.
        """
        with self._lock:
            return [r for r in self._ring
                    if r.get("window") is not None
                    and first <= r["window"] <= last]

    def reader_view(self) -> LogView:
        """Freeze the current ring for byte-stable serving."""
        with self._lock:
            return LogView(
                tuple(self._ring),
                emitted=self.emitted,
                suppressed=self.suppressed,
                sampled_out=self.sampled_out,
                evicted=self.evicted,
            )

    def summary(self) -> dict:
        with self._lock:
            doc = {
                "events_total": self.emitted,
                "resident": len(self._ring),
                "capacity": self.capacity,
                "level": self.level,
                "suppressed_total": self.suppressed,
                "sampled_out_total": self.sampled_out,
                "evicted_total": self.evicted,
                "filtered_total": self.filtered,
            }
        if self.store is not None:
            doc["store"] = self.store.summary()
        return doc
