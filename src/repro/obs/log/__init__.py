"""Structured event-log pillar: correlated, durable, queryable.

Completes the metrics/traces/logs observability triad.  The pieces:

* :class:`EventLog` — process-safe bounded ring with severity levels,
  event-time token-bucket rate limiting, deterministic sampling, and
  correlation enrichment (trace/span ids, window index, shard unit,
  cap decision version, incident id).
* :class:`LogStore` — JSONL segment rotation with a manifested
  retention/GC scheme riding the ``obs.history`` segment idioms;
  reopen-resume is bitwise-equal to one continuous run.
* :func:`select` / :func:`render_records` — the pure query engine
  behind ``/v1/logs`` and ``repro obs logs``.

Attach an :class:`EventLog` to a stream engine with
``engine.attach_log(log)``, pass one to the control plane as
``ControlPlane(..., event_log=log)``, or hand it to
``repro.obs.enable(log=log)`` so worker-process emissions fold back
through :func:`repro.parallel.chunked_map` payloads in canonical chunk
order (worker-count invariant, like profiles).
"""

from .events import (
    DEFAULT_RATE_LIMITS,
    SEVERITIES,
    SEVERITY_CODE,
    EventLog,
    LogView,
    TokenBucket,
)
from .query import render_record, render_records, select, tail
from .store import DEFAULT_SEGMENT_RECORDS, LogStore

__all__ = [
    "DEFAULT_RATE_LIMITS",
    "DEFAULT_SEGMENT_RECORDS",
    "SEVERITIES",
    "SEVERITY_CODE",
    "EventLog",
    "LogStore",
    "LogView",
    "TokenBucket",
    "render_record",
    "render_records",
    "select",
    "tail",
]
