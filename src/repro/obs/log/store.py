"""On-disk JSONL segment store for structured event logs.

The store mirrors the ``obs.history`` segment idioms: an append-only
directory of fixed-capacity segment files plus an atomically rewritten
``manifest.json``.  Records are one sorted-key JSON object per line, so
segments are greppable, diffable, and byte-reproducible: appending the
same record stream always yields the same segment bytes, and a store
that is closed mid-segment and reopened continues appending to the same
file — reopen-resume is bitwise-equal to one continuous run.

Retention is segment-granular: :meth:`LogStore.gc` drops whole closed
segments whose newest record fell behind the event-time frontier by
more than ``keep_s``, never rewriting surviving bytes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional

from ...errors import LogError

#: Records per segment file before rotation.
DEFAULT_SEGMENT_RECORDS = 4096
#: Manifest file name inside the store directory.
MANIFEST_NAME = "manifest.json"
#: On-disk format version; bumped on incompatible layout changes.
_FORMAT = 1


def _render_line(record: dict) -> str:
    """Canonical single-line serialization: sorted keys, no spaces."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class LogStore:
    """JSONL segment store with manifested rotation, retention, and GC."""

    def __init__(self, dir, *, segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 meta: Optional[dict] = None):
        self.dir = Path(dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        if (self.dir / MANIFEST_NAME).exists():
            raise LogError(
                f"{self.dir} already holds a log store; use LogStore.open()"
            )
        if segment_records < 1:
            raise LogError("segment_records must be >= 1")
        self.segment_records = int(segment_records)
        self.meta = dict(meta or {})
        self.segments: list = []     # closed + active descriptors, in order
        self.next_file_id = 0
        self.gc_dropped_segments = 0
        self.gc_dropped_records = 0
        self._fh = None              # append handle for the active segment
        self._dirty = False
        self.sync()

    # -- lifecycle ----------------------------------------------------

    @classmethod
    def open(cls, dir) -> "LogStore":
        """Reopen an existing store, resuming mid-segment appends.

        The newest segment file is scanned line-by-line; a trailing
        partial line (torn write on crash) is truncated so the resumed
        stream stays byte-identical to an uninterrupted run.
        """
        dir = Path(dir)
        path = dir / MANIFEST_NAME
        if not path.exists():
            raise LogError(f"{dir} does not hold a log store manifest")
        doc = json.loads(path.read_text())
        if doc.get("format") != _FORMAT:
            raise LogError(
                f"log store format {doc.get('format')!r} != {_FORMAT}"
            )
        self = cls.__new__(cls)
        self.dir = dir
        self.segment_records = int(doc["segment_records"])
        self.meta = dict(doc.get("meta", {}))
        self.segments = list(doc.get("segments", []))
        self.next_file_id = int(doc["next_file_id"])
        self.gc_dropped_segments = int(doc.get("gc_dropped_segments", 0))
        self.gc_dropped_records = int(doc.get("gc_dropped_records", 0))
        self._fh = None
        self._dirty = False
        if self.segments and self.segments[-1]["records"] < self.segment_records:
            self._recover_tail(self.segments[-1])
        return self

    def _recover_tail(self, seg: dict) -> None:
        """Re-adopt the still-open tail segment after a reopen."""
        path = self.dir / seg["file"]
        if not path.exists():
            raise LogError(f"log segment missing: {path}")
        raw = path.read_bytes()
        end = raw.rfind(b"\n") + 1
        if end != len(raw):          # torn trailing write: drop it
            with open(path, "r+b") as fh:
                fh.truncate(end)
            raw = raw[:end]
        records = [json.loads(line) for line in raw.splitlines() if line]
        if len(records) < seg["records"]:
            raise LogError(
                f"log segment {seg['file']} holds {len(records)} records, "
                f"manifest says {seg['records']}"
            )
        # Lines past the manifest count were synced to the file but not
        # yet to the manifest; adopt them.
        seg["records"] = len(records)
        if records:
            seg["t0"] = min(r.get("t_s", 0.0) for r in records)
            seg["t1"] = max(r.get("t_s", 0.0) for r in records)
            seg["seq0"] = records[0].get("seq", 0)
            seg["seq1"] = records[-1].get("seq", 0)

    def close(self) -> None:
        self.sync()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- appending ----------------------------------------------------

    def _start_segment(self) -> dict:
        name = f"seg-{self.next_file_id:06d}.jsonl"
        self.next_file_id += 1
        seg = {"file": name, "records": 0,
               "t0": None, "t1": None, "seq0": None, "seq1": None}
        self.segments.append(seg)
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.dir / name, "ab")
        return seg

    def append(self, record: dict) -> None:
        """Append one record to the active segment, rotating when full."""
        if self.segments and self.segments[-1]["records"] < self.segment_records:
            seg = self.segments[-1]
            if self._fh is None:     # reopened store: resume in append mode
                self._fh = open(self.dir / seg["file"], "ab")
        else:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            seg = self._start_segment()
        self._fh.write(_render_line(record).encode() + b"\n")
        t = float(record.get("t_s", 0.0))
        seg["records"] += 1
        seg["t0"] = t if seg["t0"] is None else min(seg["t0"], t)
        seg["t1"] = t if seg["t1"] is None else max(seg["t1"], t)
        if seg["seq0"] is None:
            seg["seq0"] = record.get("seq", 0)
        seg["seq1"] = record.get("seq", 0)
        self._dirty = True

    def sync(self) -> None:
        """Flush the active segment and atomically rewrite the manifest."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        doc = {
            "format": _FORMAT,
            "segment_records": self.segment_records,
            "next_file_id": self.next_file_id,
            "segments": self.segments,
            "records_total": self.records_resident(),
            "gc_dropped_segments": self.gc_dropped_segments,
            "gc_dropped_records": self.gc_dropped_records,
            "meta": self.meta,
        }
        tmp = self.dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        tmp.replace(self.dir / MANIFEST_NAME)
        self._dirty = False

    # -- retention ----------------------------------------------------

    def gc(self, keep_s: float) -> dict:
        """Drop whole closed segments older than ``frontier - keep_s``.

        The still-open tail segment is never dropped.  Empty segments
        (zero records — possible only after a crash between rotation
        and the first append) are always collected.
        """
        if keep_s < 0:
            raise LogError("keep_s must be >= 0")
        span = self.time_span()
        cutoff = None if span is None else span[1] - keep_s
        kept: list = []
        dropped_segments = dropped_records = 0
        for i, seg in enumerate(self.segments):
            is_tail = i == len(self.segments) - 1
            empty = seg["records"] == 0
            expired = (cutoff is not None and seg["t1"] is not None
                       and seg["t1"] < cutoff)
            if (empty or expired) and not is_tail:
                (self.dir / seg["file"]).unlink(missing_ok=True)
                dropped_segments += 1
                dropped_records += seg["records"]
            else:
                kept.append(seg)
        self.segments = kept
        self.gc_dropped_segments += dropped_segments
        self.gc_dropped_records += dropped_records
        if dropped_segments:
            self.sync()
        return {"dropped_segments": dropped_segments,
                "dropped_records": dropped_records}

    # -- reading ------------------------------------------------------

    def iter_records(self, t0: Optional[float] = None,
                     t1: Optional[float] = None) -> Iterator[dict]:
        """Yield records in append order from segments overlapping [t0, t1]."""
        if self._fh is not None:
            self._fh.flush()
        for seg in self.segments:
            if seg["records"] == 0:
                continue
            if t0 is not None and seg["t1"] is not None and seg["t1"] < t0:
                continue
            if t1 is not None and seg["t0"] is not None and seg["t0"] > t1:
                continue
            path = self.dir / seg["file"]
            with open(path, "rb") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    rec = json.loads(line)
                    t = rec.get("t_s", 0.0)
                    if t0 is not None and t < t0:
                        continue
                    if t1 is not None and t > t1:
                        continue
                    yield rec

    # -- accounting ---------------------------------------------------

    def records_resident(self) -> int:
        return sum(seg["records"] for seg in self.segments)

    def segment_count(self) -> int:
        return len(self.segments)

    def total_bytes(self) -> int:
        total = 0
        for seg in self.segments:
            path = self.dir / seg["file"]
            if path.exists():
                total += path.stat().st_size
        return total

    def time_span(self):
        """(oldest t0, newest t1) across resident records, or ``None``."""
        lo = hi = None
        for seg in self.segments:
            if seg["t0"] is None:
                continue
            lo = seg["t0"] if lo is None else min(lo, seg["t0"])
            hi = seg["t1"] if hi is None else max(hi, seg["t1"])
        return None if lo is None else (lo, hi)

    def summary(self) -> dict:
        span = self.time_span()
        return {
            "dir": str(self.dir),
            "segments": self.segment_count(),
            "records": self.records_resident(),
            "bytes": self.total_bytes(),
            "span_s": None if span is None else [span[0], span[1]],
            "gc_dropped_segments": self.gc_dropped_segments,
            "gc_dropped_records": self.gc_dropped_records,
        }

    def metric_values(self) -> dict:
        return {
            "log_store_segments": float(self.segment_count()),
            "log_store_records": float(self.records_resident()),
            "log_store_bytes": float(self.total_bytes()),
        }

    def check(self) -> list:
        """Validate manifest/segment consistency; list of problem strings."""
        problems = []
        prev_seq = None
        for seg in self.segments:
            path = self.dir / seg["file"]
            if not path.exists():
                problems.append(f"missing segment file {seg['file']}")
                continue
            records = [json.loads(line) for line in path.read_bytes().splitlines()
                       if line.strip()]
            if len(records) != seg["records"]:
                problems.append(
                    f"{seg['file']}: {len(records)} records on disk, "
                    f"manifest says {seg['records']}"
                )
                continue
            for rec in records:
                seq = rec.get("seq")
                if prev_seq is not None and seq is not None and seq <= prev_seq:
                    problems.append(
                        f"{seg['file']}: seq {seq} not increasing "
                        f"(previous {prev_seq})"
                    )
                if seq is not None:
                    prev_seq = seq
            if records:
                t_lo = min(r.get("t_s", 0.0) for r in records)
                t_hi = max(r.get("t_s", 0.0) for r in records)
                if seg["t0"] is not None and abs(t_lo - seg["t0"]) > 1e-9:
                    problems.append(f"{seg['file']}: t0 mismatch")
                if seg["t1"] is not None and abs(t_hi - seg["t1"]) > 1e-9:
                    problems.append(f"{seg['file']}: t1 mismatch")
        return problems
