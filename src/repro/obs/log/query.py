"""Pure-function query engine and renderers for event-log records.

Everything here is side-effect free: :func:`select` filters a record
sequence (from a ring snapshot, a :class:`~repro.obs.log.store.LogStore`
iterator, or a served ``/v1/logs`` document) and the renderers turn
records into stable text for the CLI and the live dashboard pane.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...errors import LogError
from .events import SEVERITY_CODE


def select(records: Iterable[dict], *, t0: Optional[float] = None,
           t1: Optional[float] = None, min_severity: Optional[str] = None,
           event: Optional[str] = None, window: Optional[int] = None,
           fields: Optional[dict] = None,
           limit: Optional[int] = None) -> List[dict]:
    """Filter records by time range, severity floor, event, and fields.

    ``event`` matches exactly, or as a dotted prefix when it ends with
    ``.`` (``"serve."`` selects every control-plane event).  ``fields``
    matches against correlation ids and ``fields`` payload entries
    alike.  ``limit`` keeps the *newest* matches, preserving order.
    """
    floor = None
    if min_severity is not None:
        floor = SEVERITY_CODE.get(min_severity)
        if floor is None:
            raise LogError(
                f"unknown severity {min_severity!r}; "
                f"choose from {tuple(SEVERITY_CODE)}"
            )
    out: List[dict] = []
    for rec in records:
        if t0 is not None and rec.get("t_s", 0.0) < t0:
            continue
        if t1 is not None and rec.get("t_s", 0.0) > t1:
            continue
        if floor is not None and SEVERITY_CODE.get(
                rec.get("severity", "debug"), 0) < floor:
            continue
        name = rec.get("event", "")
        if event is not None:
            if event.endswith("."):
                if not name.startswith(event):
                    continue
            elif name != event:
                continue
        if window is not None and rec.get("window") != window:
            continue
        if fields is not None and not _fields_match(rec, fields):
            continue
        out.append(rec)
    if limit is not None and limit >= 0 and len(out) > limit:
        out = out[len(out) - limit:]
    return out


def _fields_match(rec: dict, wanted: dict) -> bool:
    payload = rec.get("fields", {})
    for key, value in wanted.items():
        have = rec.get(key, payload.get(key))
        if have != value:
            return False
    return True


def render_record(rec: dict, *, width: Optional[int] = None) -> str:
    """One stable text line: time, severity, event, message, ids."""
    parts = [
        f"t={rec.get('t_s', 0.0):>10.1f}s",
        f"{rec.get('severity', '?').upper():<8s}",
        f"{rec.get('event', '?'):<22s}",
        rec.get("msg", ""),
    ]
    ids = []
    for key in ("window", "node", "job", "incident", "cap_version"):
        if key in rec:
            ids.append(f"{key}={rec[key]}")
    if rec.get("suppressed"):
        ids.append(f"suppressed={rec['suppressed']}")
    if ids:
        parts.append("[" + " ".join(ids) + "]")
    line = "  ".join(p for p in parts if p)
    if width is not None and len(line) > width:
        line = line[: max(1, width - 1)] + "…"
    return line


def render_records(records: Iterable[dict], *,
                   width: Optional[int] = None) -> str:
    return "\n".join(render_record(r, width=width) for r in records)


def tail(records: List[dict], n: int) -> List[dict]:
    """The newest ``n`` records, oldest of them first."""
    if n <= 0:
        return []
    return records[-n:]
