"""DVFS frequency/voltage curve and power scale factors.

Dynamic CMOS power scales as ``f * v(f)^2``.  The simulator uses a linear
frequency/voltage curve ``v(x) = v0 + v1 * x`` (``x = f / f_max``), which is
a good approximation of the reported MI250X operating points over the
500-1700 MHz range.

Two scale factors are derived:

* :func:`core_scale` (phi) — applies to the core/ALU and L2 power terms and
  follows the classic ``f * v^2`` law;
* :func:`uncore_scale` (psi) — applies to the HBM/uncore power term, which
  only partially follows the core clock (``psi0`` floor).  Frequency caps
  drag the uncore domain down with the core; power caps do not (they
  throttle the core domain alone), which is how the simulator reproduces
  the paper's observation that power caps are breached by memory-heavy
  workloads while frequency caps still reduce their power draw.

All functions accept scalars or NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from .specs import MI250XSpec


def voltage(spec: MI250XSpec, f_hz):
    """Core voltage (volts) at frequency ``f_hz``."""
    x = np.asarray(f_hz, dtype=float) / spec.f_max_hz
    return spec.v0 + spec.v1 * x


def core_scale(spec: MI250XSpec, f_hz):
    """phi(f): core dynamic-power scale relative to f_max (=1 at f_max)."""
    x = np.asarray(f_hz, dtype=float) / spec.f_max_hz
    # voltage(spec, f_max) folds to the exact float v0 + v1 (x there is
    # exactly 1.0), so skip the array round-trip on the hot meter path.
    v_ratio = (spec.v0 + spec.v1 * x) / (spec.v0 + spec.v1)
    out = x * v_ratio**2
    return float(out) if np.isscalar(f_hz) else out


def uncore_scale(spec: MI250XSpec, f_hz, *, capped):
    """psi(f): HBM/uncore power scale.

    ``capped=False`` — no frequency ceiling set: the uncore runs its full
    P-state (scale 1.0 regardless of the instantaneous core clock).

    ``capped=True`` — a DVFS ceiling is in force: the firmware engages a
    lower uncore P-state and the scale follows the calibrated
    ``psi_cap0 + psi_cap1 * (f / f_max)`` response.

    ``capped`` may also be a boolean array (one flag per grid point in the
    batched path); it broadcasts against ``f_hz``.
    """
    x = np.asarray(f_hz, dtype=float) / spec.f_max_hz
    capped_arr = np.asarray(capped)
    if capped_arr.ndim == 0:
        if capped_arr:
            out = spec.psi_cap0 + spec.psi_cap1 * x
        else:
            out = np.ones_like(x)
        return float(out) if np.isscalar(f_hz) else out
    return np.where(capped_arr, spec.psi_cap0 + spec.psi_cap1 * x, 1.0)


def frequency_grid(spec: MI250XSpec, n: int = 64) -> np.ndarray:
    """A dense frequency grid across the DVFS range, in Hz."""
    return np.linspace(spec.f_min_hz, spec.f_max_hz, n)
