"""Per-kernel DVFS governor.

Static caps (the paper's knob) trade one frequency against a whole
workload; a *governor* re-decides per kernel.  This module implements the
idealized sensitivity-aware governor the DVFS literature aims for (cf.
the paper's ref [5], "Predict; don't react"): for each kernel it picks
the lowest clock whose predicted slowdown stays within a tolerance, which
is optimal for memory-bound kernels (deep downclock, free) and
conservative for compute-bound ones (stay near f_max).

The governor is an oracle in the sense that it sees the kernel's true
roofline position before choosing — it bounds what any reactive/predictive
hardware governor could achieve on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import CapError
from .device import GPUDevice, KernelResult
from .kernel import KernelBatch, KernelSpec
from .perf import execute, execute_batch
from .power import steady_power, steady_power_batch
from .specs import MI250XSpec, default_spec

#: Default DVFS menu a governor can pick from (MHz).
DEFAULT_MENU_MHZ = (1700, 1500, 1300, 1100, 900, 700, 500)


@dataclass(frozen=True)
class GovernorDecision:
    """The governor's pick for one kernel.

    ``capped`` distinguishes a ceiling *at f_max* (which still engages
    the low uncore P-state — free power for memory traffic) from leaving
    the device unmanaged.
    """

    f_mhz: float
    capped: bool
    predicted_slowdown: float
    predicted_power_w: float


class SensitivityGovernor:
    """Pick the lowest clock within a per-kernel slowdown tolerance."""

    def __init__(
        self,
        spec: Optional[MI250XSpec] = None,
        *,
        slowdown_tolerance: float = 0.02,
        menu_mhz: Sequence[float] = DEFAULT_MENU_MHZ,
    ) -> None:
        if slowdown_tolerance < 0:
            raise CapError("slowdown tolerance must be >= 0")
        if not menu_mhz:
            raise CapError("governor needs a non-empty frequency menu")
        self.spec = spec if spec is not None else default_spec()
        self.slowdown_tolerance = slowdown_tolerance
        self.menu_hz = sorted(
            (self.spec.clamp_frequency(m * 1e6) for m in menu_mhz),
            reverse=True,
        )

    def decide(self, kernel: KernelSpec) -> GovernorDecision:
        """Choose the frequency for one kernel.

        The whole DVFS menu is evaluated as one batched pass (one
        :func:`~repro.gpu.perf.execute_batch` call instead of a scalar
        model evaluation per menu entry); the pick is the first minimum-
        energy candidate within tolerance, exactly what the original
        strict running-minimum scan over the descending menu selected.
        """
        base = execute(self.spec, kernel, self.spec.f_max_hz)
        best = GovernorDecision(
            f_mhz=self.spec.f_max_hz / 1e6,
            capped=False,
            predicted_slowdown=1.0,
            predicted_power_w=steady_power(
                self.spec, base, uncore_capped=False
            ),
        )
        base_energy = best.predicted_power_w * base.time_s

        menu = np.array(self.menu_hz)
        batch = KernelBatch.from_kernels([kernel] * len(menu))
        profile = execute_batch(self.spec, batch, menu)
        slowdown = profile.time_s / base.time_s
        power = steady_power_batch(
            self.spec, profile, f_core_hz=menu, uncore_capped=True
        )
        energy = power * profile.time_s
        ok = ~(slowdown > 1.0 + self.slowdown_tolerance)
        candidate = ok & (energy < base_energy)
        if not candidate.any():
            return best
        i = int(np.argmin(np.where(candidate, energy, np.inf)))
        return GovernorDecision(
            f_mhz=menu[i] / 1e6,
            capped=True,
            predicted_slowdown=float(slowdown[i]),
            predicted_power_w=float(power[i]),
        )

    def run(self, kernel: KernelSpec) -> KernelResult:
        """Execute a kernel at the governor's chosen frequency."""
        decision = self.decide(kernel)
        cap = decision.f_mhz * 1e6 if decision.capped else None
        device = GPUDevice(self.spec, frequency_cap_hz=cap)
        return device.run(kernel)


def governor_vs_static(
    kernels: Sequence[KernelSpec],
    *,
    static_cap_mhz: float = 900.0,
    spec: Optional[MI250XSpec] = None,
    slowdown_tolerance: float = 0.02,
) -> dict:
    """Compare the governor against uncapped and a static cap.

    Returns total energy and time for the three strategies over a kernel
    stream — the per-kernel analogue of the per-job policy comparison.
    Each strategy's whole stream is one :meth:`GPUDevice.run_batch` call
    (the governor's per-kernel caps become one per-point cap column);
    accumulation stays per-kernel in stream order so totals match the
    original scalar loop bitwise.
    """
    spec = spec if spec is not None else default_spec()
    device = GPUDevice(spec)
    governor = SensitivityGovernor(
        spec, slowdown_tolerance=slowdown_tolerance
    )
    kernels = list(kernels)
    governor_caps = [
        (d.f_mhz * 1e6 if d.capped else None)
        for d in (governor.decide(k) for k in kernels)
    ]

    out = {
        name: {"energy_j": 0.0, "time_s": 0.0}
        for name in ("uncapped", "static", "governor")
    }
    for name, result in (
        ("uncapped", device.run_batch(kernels)),
        (
            "static",
            device.run_batch(
                kernels, frequency_caps_hz=static_cap_mhz * 1e6
            ),
        ),
        ("governor", device.run_batch(kernels, frequency_caps_hz=governor_caps)),
    ):
        for i in range(len(kernels)):
            out[name]["energy_j"] += float(result.energy_j[i])
            out[name]["time_s"] += float(result.time_s[i])
    for name in ("static", "governor"):
        out[name]["saving_pct"] = 100.0 * (
            1.0 - out[name]["energy_j"] / out["uncapped"]["energy_j"]
        )
        out[name]["slowdown_pct"] = 100.0 * (
            out[name]["time_s"] / out["uncapped"]["time_s"] - 1.0
        )
    return out
