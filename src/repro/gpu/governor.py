"""Per-kernel DVFS governor.

Static caps (the paper's knob) trade one frequency against a whole
workload; a *governor* re-decides per kernel.  This module implements the
idealized sensitivity-aware governor the DVFS literature aims for (cf.
the paper's ref [5], "Predict; don't react"): for each kernel it picks
the lowest clock whose predicted slowdown stays within a tolerance, which
is optimal for memory-bound kernels (deep downclock, free) and
conservative for compute-bound ones (stay near f_max).

The governor is an oracle in the sense that it sees the kernel's true
roofline position before choosing — it bounds what any reactive/predictive
hardware governor could achieve on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import CapError
from .device import GPUDevice, KernelResult
from .kernel import KernelSpec
from .perf import execute
from .power import steady_power
from .specs import MI250XSpec, default_spec

#: Default DVFS menu a governor can pick from (MHz).
DEFAULT_MENU_MHZ = (1700, 1500, 1300, 1100, 900, 700, 500)


@dataclass(frozen=True)
class GovernorDecision:
    """The governor's pick for one kernel.

    ``capped`` distinguishes a ceiling *at f_max* (which still engages
    the low uncore P-state — free power for memory traffic) from leaving
    the device unmanaged.
    """

    f_mhz: float
    capped: bool
    predicted_slowdown: float
    predicted_power_w: float


class SensitivityGovernor:
    """Pick the lowest clock within a per-kernel slowdown tolerance."""

    def __init__(
        self,
        spec: Optional[MI250XSpec] = None,
        *,
        slowdown_tolerance: float = 0.02,
        menu_mhz: Sequence[float] = DEFAULT_MENU_MHZ,
    ) -> None:
        if slowdown_tolerance < 0:
            raise CapError("slowdown tolerance must be >= 0")
        if not menu_mhz:
            raise CapError("governor needs a non-empty frequency menu")
        self.spec = spec if spec is not None else default_spec()
        self.slowdown_tolerance = slowdown_tolerance
        self.menu_hz = sorted(
            (self.spec.clamp_frequency(m * 1e6) for m in menu_mhz),
            reverse=True,
        )

    def decide(self, kernel: KernelSpec) -> GovernorDecision:
        """Choose the frequency for one kernel."""
        base = execute(self.spec, kernel, self.spec.f_max_hz)
        best = GovernorDecision(
            f_mhz=self.spec.f_max_hz / 1e6,
            capped=False,
            predicted_slowdown=1.0,
            predicted_power_w=steady_power(
                self.spec, base, uncore_capped=False
            ),
        )
        best_energy = best.predicted_power_w * base.time_s
        for f_hz in self.menu_hz:
            profile = execute(self.spec, kernel, f_hz)
            slowdown = profile.time_s / base.time_s
            if slowdown > 1.0 + self.slowdown_tolerance:
                continue
            power = steady_power(
                self.spec, profile, f_core_hz=f_hz, uncore_capped=True
            )
            energy = power * profile.time_s
            if energy < best_energy:
                best_energy = energy
                best = GovernorDecision(
                    f_mhz=f_hz / 1e6,
                    capped=True,
                    predicted_slowdown=slowdown,
                    predicted_power_w=power,
                )
        return best

    def run(self, kernel: KernelSpec) -> KernelResult:
        """Execute a kernel at the governor's chosen frequency."""
        decision = self.decide(kernel)
        cap = decision.f_mhz * 1e6 if decision.capped else None
        device = GPUDevice(self.spec, frequency_cap_hz=cap)
        return device.run(kernel)


def governor_vs_static(
    kernels: Sequence[KernelSpec],
    *,
    static_cap_mhz: float = 900.0,
    spec: Optional[MI250XSpec] = None,
    slowdown_tolerance: float = 0.02,
) -> dict:
    """Compare the governor against uncapped and a static cap.

    Returns total energy and time for the three strategies over a kernel
    stream — the per-kernel analogue of the per-job policy comparison.
    """
    spec = spec if spec is not None else default_spec()
    uncapped = GPUDevice(spec)
    static = GPUDevice(spec, frequency_cap_hz=static_cap_mhz * 1e6)
    governor = SensitivityGovernor(
        spec, slowdown_tolerance=slowdown_tolerance
    )

    out = {
        name: {"energy_j": 0.0, "time_s": 0.0}
        for name in ("uncapped", "static", "governor")
    }
    for kernel in kernels:
        for name, result in (
            ("uncapped", uncapped.run(kernel)),
            ("static", static.run(kernel)),
            ("governor", governor.run(kernel)),
        ):
            out[name]["energy_j"] += result.energy_j
            out[name]["time_s"] += result.time_s
    for name in ("static", "governor"):
        out[name]["saving_pct"] = 100.0 * (
            1.0 - out[name]["energy_j"] / out["uncapped"]["energy_j"]
        )
        out[name]["slowdown_pct"] = 100.0 * (
            out[name]["time_s"] / out["uncapped"]["time_s"] - 1.0
        )
    return out
