"""Frequency-cap governor.

Models the behaviour of ``rocm-smi --setsclk``-style frequency capping: the
requested ceiling is clamped into the DVFS range and optionally quantized
to the device's discrete operating points.  A frequency cap lowers the
*uncore* domain along with the core (see :mod:`repro.gpu.power`), which is
what distinguishes it from a power cap in this simulator.
"""

from __future__ import annotations

import numpy as np

from ..errors import CapError
from .specs import MI250XSpec

#: Spacing of discrete DVFS operating points (Hz) when quantization is on.
DVFS_STEP_HZ = 50e6


def resolve_frequency_cap(
    spec: MI250XSpec,
    cap_hz: float | None,
    *,
    quantize: bool = False,
) -> float:
    """Resolve a user frequency-cap request to an operating frequency.

    ``None`` means uncapped (run at f_max).  Requests outside the DVFS
    range raise :class:`~repro.errors.CapError` rather than silently
    clamping, because a cap below f_min is not realizable on the device.
    """
    if cap_hz is None:
        return spec.f_max_hz
    if cap_hz <= 0:
        raise CapError(f"frequency cap must be positive, got {cap_hz}")
    if cap_hz < spec.f_min_hz:
        raise CapError(
            f"frequency cap {cap_hz / 1e6:.0f} MHz below device minimum "
            f"{spec.f_min_hz / 1e6:.0f} MHz"
        )
    f = min(cap_hz, spec.f_max_hz)
    if quantize:
        f = float(np.floor(f / DVFS_STEP_HZ) * DVFS_STEP_HZ)
        f = max(f, spec.f_min_hz)
    return f


def resolve_frequency_caps(
    spec: MI250XSpec,
    caps_hz: np.ndarray,
    *,
    quantize: bool = False,
) -> np.ndarray:
    """Vectorized :func:`resolve_frequency_cap` over a cap array.

    ``caps_hz`` is a float array where NaN means uncapped (run at f_max).
    Out-of-range requests raise :class:`~repro.errors.CapError` exactly as
    the scalar path does.
    """
    caps = np.asarray(caps_hz, dtype=np.float64)
    capped = ~np.isnan(caps)
    if np.any(capped & (caps <= 0)):
        bad = caps[capped & (caps <= 0)][0]
        raise CapError(f"frequency cap must be positive, got {bad}")
    if np.any(capped & (caps < spec.f_min_hz)):
        bad = caps[capped & (caps < spec.f_min_hz)][0]
        raise CapError(
            f"frequency cap {bad / 1e6:.0f} MHz below device minimum "
            f"{spec.f_min_hz / 1e6:.0f} MHz"
        )
    f = np.where(capped, np.minimum(caps, spec.f_max_hz), spec.f_max_hz)
    if quantize:
        q = np.maximum(
            np.floor(f / DVFS_STEP_HZ) * DVFS_STEP_HZ, spec.f_min_hz
        )
        f = np.where(capped, q, f)
    return f


def boost_frequency(spec: MI250XSpec) -> float:
    """Short-excursion boost frequency above f_max."""
    return spec.f_max_hz * spec.boost_f_factor
