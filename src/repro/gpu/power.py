"""Steady-state power model of one MI250X module.

The model is a calibrated activity-based decomposition::

    P = P_idle
        + core_power * a_core * phi(f_core)
        + l2_power   * a_l2   * phi(f_core)
        + hbm_power  * a_hbm  * psi(f_uncore)
        - cross_power * a_core * a_hbm * phi(f_core)

The negative cross term makes compute+memory overlap *sub-additive*: the
engines share schedulers and data paths, so the fully-saturated ridge
(arithmetic intensity 4) peaks at 540 W rather than the 700+ W a purely
additive model would predict, exactly as the paper measures.  Monotonicity
in each activity is guaranteed by the spec invariant
``cross_power < min(core_power, hbm_power)``.

The ``uncore_capped`` flag implements the asymmetry between the two
management knobs:

* a *frequency cap* engages the low uncore P-state (``uncore_capped=True``),
  so the HBM/uncore term drops by the psi_cap step;
* a *power cap* throttles the core clock only (``uncore_capped=False``),
  leaving the uncore at full scale — which is why HBM-heavy kernels breach
  low power caps in the paper's Fig 6(d).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from . import voltage
from .perf import BatchProfile, ExecutionProfile
from .specs import MI250XSpec


def steady_power(
    spec: MI250XSpec,
    profile: ExecutionProfile,
    *,
    f_core_hz: float | None = None,
    uncore_capped: bool = False,
) -> float:
    """Steady-state module power (W) for an execution profile.

    ``f_core_hz`` defaults to the profile's frequency.  ``uncore_capped``
    says whether a DVFS ceiling is in force (frequency-cap behaviour).
    """
    f_core = profile.f_hz if f_core_hz is None else f_core_hz
    phi = voltage.core_scale(spec, f_core)
    psi = voltage.uncore_scale(spec, f_core, capped=uncore_capped)
    core_act = min(1.0, profile.core_activity + profile.stall_activity)
    p = (
        spec.idle_w
        + spec.core_power_w * core_act * phi
        + spec.l2_power_w * profile.l2_activity * phi
        + spec.hbm_power_w * profile.hbm_activity * psi
        - spec.cross_power_w * core_act * profile.hbm_activity * phi
    )
    return min(p, spec.tdp_w)


def metered_power(spec: MI250XSpec, profile: ExecutionProfile, f_core_hz: float) -> float:
    """Power as seen by the power-cap controller's meter (W).

    Only ``cap_metered_hbm_fraction`` of the HBM/uncore term is in the
    managed domain; the rest is invisible to the firmware loop.  The
    uncore runs its full P-state under a power cap.
    """
    phi = voltage.core_scale(spec, f_core_hz)
    kappa = spec.cap_metered_hbm_fraction
    core_act = min(1.0, profile.core_activity + profile.stall_activity)
    # The overlap (cross) term is scaled by the same metered fraction so the
    # meter reading stays monotone in the memory activity.
    return (
        spec.idle_w
        + spec.core_power_w * core_act * phi
        + spec.l2_power_w * profile.l2_activity * phi
        + kappa * spec.hbm_power_w * profile.hbm_activity
        - kappa * spec.cross_power_w * core_act
        * profile.hbm_activity * phi
    )


def steady_power_batch(
    spec: MI250XSpec,
    profile: BatchProfile,
    *,
    f_core_hz: Union[np.ndarray, None] = None,
    uncore_capped: Union[bool, np.ndarray] = False,
) -> np.ndarray:
    """Vectorized :func:`steady_power`: one module power per grid point.

    ``uncore_capped`` may be a per-point boolean array (mixed-knob grids).
    The expression mirrors the scalar path term-for-term so batch and
    scalar powers agree bitwise.
    """
    f_core = profile.f_hz if f_core_hz is None else np.asarray(f_core_hz, float)
    phi = voltage.core_scale(spec, f_core)
    psi = voltage.uncore_scale(spec, f_core, capped=uncore_capped)
    core_act = np.minimum(1.0, profile.core_activity + profile.stall_activity)
    p = (
        spec.idle_w
        + spec.core_power_w * core_act * phi
        + spec.l2_power_w * profile.l2_activity * phi
        + spec.hbm_power_w * profile.hbm_activity * psi
        - spec.cross_power_w * core_act * profile.hbm_activity * phi
    )
    return np.minimum(p, spec.tdp_w)


def metered_power_batch(
    spec: MI250XSpec, profile: BatchProfile, f_core_hz: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`metered_power` (the power-cap controller's meter)."""
    return metered_power_from_activities(
        spec,
        f_core_hz,
        profile.core_activity,
        profile.hbm_activity,
        profile.l2_activity,
        profile.stall_activity,
    )


def metered_power_from_activities(
    spec: MI250XSpec,
    f_core_hz: np.ndarray,
    core_activity: np.ndarray,
    hbm_activity: np.ndarray,
    l2_activity: np.ndarray,
    stall_activity: np.ndarray,
) -> np.ndarray:
    """The meter expression on raw activity columns (bisection hot path)."""
    phi = voltage.core_scale(spec, np.asarray(f_core_hz, float))
    kappa = spec.cap_metered_hbm_fraction
    core_act = np.minimum(1.0, core_activity + stall_activity)
    return (
        spec.idle_w
        + spec.core_power_w * core_act * phi
        + spec.l2_power_w * l2_activity * phi
        + kappa * spec.hbm_power_w * hbm_activity
        - kappa * spec.cross_power_w * core_act
        * hbm_activity * phi
    )


def idle_power(spec: MI250XSpec) -> float:
    """Module idle power (W)."""
    return spec.idle_w


def energy(power_w: float, time_s: float) -> float:
    """Energy in joules for a steady power over a duration."""
    return power_w * time_s
