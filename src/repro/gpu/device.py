"""The simulated GPU device.

:class:`GPUDevice` ties the layers together: it holds a specification and
the current management settings (frequency cap, power cap), executes
:class:`~repro.gpu.kernel.KernelSpec` objects, and returns
:class:`KernelResult` records with runtime, steady power, and energy.

For telemetry-facing use, :meth:`GPUDevice.power_trace` renders a kernel
run into a time series at sensor cadence, including a short boost transient
at kernel start (uncapped runs only) and Gaussian sensor noise — the raw
material for the out-of-band pipeline in :mod:`repro.telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .. import constants
from ..errors import CapError
from ..obs import runtime as _obs
from ..rng import RngLike, ensure_rng
from .dvfs import boost_frequency, resolve_frequency_cap, resolve_frequency_caps
from .kernel import KernelBatch, KernelSpec
from .perf import ExecutionProfile, execute, execute_batch
from .power import steady_power, steady_power_batch
from .powercap import enforce_power_cap, solve_power_cap_frequencies
from .specs import MI250XSpec, default_spec
from .thermal import ThermalModel


@dataclass(frozen=True)
class KernelResult:
    """Outcome of running one kernel on a device."""

    kernel: KernelSpec
    time_s: float
    power_w: float               # steady-state module power
    energy_j: float
    f_core_hz: float             # effective core clock after caps
    achieved_flops: float
    achieved_bw: float
    bound: str
    cap_breached: bool           # power cap unreachable (HBM floor)
    profile: ExecutionProfile

    @property
    def arithmetic_intensity(self) -> float:
        return self.kernel.arithmetic_intensity


@dataclass(frozen=True)
class BatchResult:
    """Struct-of-arrays outcome of one :meth:`GPUDevice.run_batch` call.

    One row per grid point; every column is an equal-length array.  The
    scalar :meth:`GPUDevice.run` path is the correctness oracle: each row
    equals the :class:`KernelResult` of the matching scalar call.
    """

    time_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    f_core_hz: np.ndarray
    bound: np.ndarray            # labels, "compute" | "memory" | ...
    cap_breached: np.ndarray     # bool
    achieved_flops: np.ndarray
    achieved_bw: np.ndarray
    l2_hit_fraction: np.ndarray

    def __len__(self) -> int:
        return len(self.time_s)

    def __getitem__(self, index) -> "BatchResult":
        """Slice/fancy-index every column (rows stay aligned)."""
        return BatchResult(
            time_s=self.time_s[index],
            power_w=self.power_w[index],
            energy_j=self.energy_j[index],
            f_core_hz=self.f_core_hz[index],
            bound=self.bound[index],
            cap_breached=self.cap_breached[index],
            achieved_flops=self.achieved_flops[index],
            achieved_bw=self.achieved_bw[index],
            l2_hit_fraction=self.l2_hit_fraction[index],
        )


def _normalize_caps(
    caps, n: int, default: Optional[float], what: str
) -> np.ndarray:
    """Per-point cap column: NaN = uncapped.  ``None`` -> device default."""
    if caps is None:
        value = np.nan if default is None else float(default)
        return np.full(n, value)
    if np.isscalar(caps):
        return np.full(n, float(caps))
    if isinstance(caps, np.ndarray) and caps.dtype.kind == "f":
        arr = caps.astype(np.float64, copy=False)
    else:
        arr = np.array(
            [np.nan if c is None else float(c) for c in caps],
            dtype=np.float64,
        )
    if arr.shape == (1,):
        return np.full(n, arr[0])
    if arr.shape != (n,):
        raise CapError(
            f"{what} must be a scalar or length-{n} sequence, "
            f"got shape {arr.shape}"
        )
    return arr


class GPUDevice:
    """One MI250X module under simulation.

    Parameters
    ----------
    spec:
        Device specification; defaults to the calibrated MI250X.
    frequency_cap_hz:
        Optional DVFS ceiling (both core and uncore domains follow it).
    power_cap_w:
        Optional module power cap (throttles the core domain only).

    Only one knob is typically set at a time, matching the paper's sweeps,
    but both may be active; the more restrictive one wins.
    """

    def __init__(
        self,
        spec: Optional[MI250XSpec] = None,
        *,
        frequency_cap_hz: Optional[float] = None,
        power_cap_w: Optional[float] = None,
    ) -> None:
        self.spec = spec if spec is not None else default_spec()
        self.thermal = ThermalModel()
        self.set_frequency_cap(frequency_cap_hz)
        self.set_power_cap(power_cap_w)

    # -- management knobs -------------------------------------------------------

    def set_frequency_cap(self, cap_hz: Optional[float]) -> None:
        """Set or clear (None) the DVFS frequency ceiling."""
        # Validate eagerly so misconfiguration fails at set time.
        resolve_frequency_cap(self.spec, cap_hz)
        self._frequency_cap_hz = cap_hz

    def set_power_cap(self, cap_w: Optional[float]) -> None:
        """Set or clear (None) the module power cap."""
        if cap_w is not None:
            if cap_w <= 0 or cap_w < self.spec.idle_w:
                raise CapError(f"unrealizable power cap {cap_w} W")
        self._power_cap_w = cap_w

    @property
    def frequency_cap_hz(self) -> Optional[float]:
        return self._frequency_cap_hz

    @property
    def power_cap_w(self) -> Optional[float]:
        return self._power_cap_w

    @property
    def uncapped(self) -> bool:
        """True when neither management knob is engaged."""
        return self._frequency_cap_hz is None and (
            self._power_cap_w is None or self._power_cap_w >= self.spec.tdp_w
        )

    # -- execution ---------------------------------------------------------------

    def run(self, kernel: KernelSpec) -> KernelResult:
        """Execute ``kernel`` under the current management settings."""
        f_ceiling = resolve_frequency_cap(self.spec, self._frequency_cap_hz)
        freq_capped = self._frequency_cap_hz is not None

        if self._power_cap_w is not None:
            solution = enforce_power_cap(self.spec, kernel, self._power_cap_w)
            f_core = min(solution.f_core_hz, f_ceiling)
            profile = execute(self.spec, kernel, f_core)
            # A power cap alone never engages the low uncore P-state; a
            # frequency cap (if also set) does.
            p = steady_power(
                self.spec, profile, f_core_hz=f_core, uncore_capped=freq_capped
            )
            breached = p > self._power_cap_w + 2.0
        else:
            f_core = f_ceiling
            profile = execute(self.spec, kernel, f_core)
            p = steady_power(
                self.spec, profile, f_core_hz=f_core, uncore_capped=freq_capped
            )
            breached = False

        return KernelResult(
            kernel=kernel,
            time_s=profile.time_s,
            power_w=p,
            energy_j=p * profile.time_s,
            f_core_hz=f_core,
            achieved_flops=profile.achieved_flops,
            achieved_bw=profile.achieved_bw,
            bound=profile.bound,
            cap_breached=breached,
            profile=profile,
        )

    def run_batch(
        self,
        kernels: Union[Sequence[KernelSpec], KernelBatch],
        *,
        frequency_caps_hz=None,
        power_caps_w=None,
    ) -> BatchResult:
        """Execute a whole grid of kernels in single NumPy passes.

        ``kernels`` is a sequence of kernels (or a pre-packed
        :class:`KernelBatch`), one per grid point.  The cap arguments give
        each point its own knob settings: a scalar applies to every point,
        a sequence (``None`` entries = uncapped) is matched per point, and
        ``None`` inherits the device's current cap settings — so a cap x
        kernel cross-product is one call with tiled columns.

        Semantics per point are identical to :meth:`run` (the scalar path
        remains the correctness oracle): a power cap bisects the core
        clock against the metered power, a frequency cap ceilings the
        clock and engages the low uncore P-state, and when both are set
        the more restrictive knob wins.

        With observability enabled the call is traced as a
        ``gpu.run_batch`` span; disabled (the default) the wrapper costs
        one global read and a branch (< 2 % budget, see
        ``docs/observability.md``).
        """
        # Read the module global directly: a function call here would be
        # the single biggest cost of the disabled path.
        st = _obs._STATE
        if st is None:
            return self._run_batch_impl(
                kernels,
                frequency_caps_hz=frequency_caps_hz,
                power_caps_w=power_caps_w,
            )
        with st.tracer.span("gpu.run_batch") as sp:
            out = self._run_batch_impl(
                kernels,
                frequency_caps_hz=frequency_caps_hz,
                power_caps_w=power_caps_w,
            )
            sp.set(points=len(out))
        st.registry.counter(
            "gpu_run_batch_points_total",
            "grid points evaluated by the batched device engine",
        ).inc(len(out))
        return out

    def _run_batch_impl(
        self,
        kernels: Union[Sequence[KernelSpec], KernelBatch],
        *,
        frequency_caps_hz=None,
        power_caps_w=None,
    ) -> BatchResult:
        """Uninstrumented body of :meth:`run_batch` (the timed hot path)."""
        batch = (
            kernels
            if isinstance(kernels, KernelBatch)
            else KernelBatch.from_kernels(kernels)
        )
        n = len(batch)
        fcaps = _normalize_caps(
            frequency_caps_hz, n, self._frequency_cap_hz, "frequency_caps_hz"
        )
        pcaps = _normalize_caps(
            power_caps_w, n, self._power_cap_w, "power_caps_w"
        )
        freq_capped = ~np.isnan(fcaps)
        f_ceiling = resolve_frequency_caps(self.spec, fcaps)

        has_pcap = ~np.isnan(pcaps)
        f_core = f_ceiling
        if has_pcap.any():
            idx = np.flatnonzero(has_pcap)
            # Only the solved clocks are needed here: the profile, power,
            # and breach flags are re-derived below with the frequency
            # ceiling applied, so skip the solver's full final evaluation.
            _, f_solved = solve_power_cap_frequencies(
                self.spec, batch.select(idx), pcaps[idx]
            )
            f_core = f_ceiling.copy()
            f_core[idx] = np.minimum(f_solved, f_ceiling[idx])

        profile = execute_batch(self.spec, batch, f_core)
        # A power cap alone never engages the low uncore P-state; a
        # frequency cap (if also set at that point) does.
        p = steady_power_batch(
            self.spec, profile, f_core_hz=f_core, uncore_capped=freq_capped
        )
        with np.errstate(invalid="ignore"):
            breached = has_pcap & (p > pcaps + 2.0)
        return BatchResult(
            time_s=profile.time_s,
            power_w=p,
            energy_j=p * profile.time_s,
            f_core_hz=f_core,
            bound=profile.bound,
            cap_breached=breached,
            achieved_flops=profile.achieved_flops,
            achieved_bw=profile.achieved_bw,
            l2_hit_fraction=profile.l2_hit_fraction,
        )

    def idle_result(self, duration_s: float) -> KernelResult:
        """A pseudo-result for an idle period (used by node accounting)."""
        idle_kernel = KernelSpec(
            name="idle", flops=0.0, hbm_bytes=1.0, issue_bw_factor=1e-9
        )
        p = self.spec.idle_w
        profile = execute(self.spec, idle_kernel, self.spec.f_min_hz)
        return KernelResult(
            kernel=idle_kernel,
            time_s=duration_s,
            power_w=p,
            energy_j=p * duration_s,
            f_core_hz=self.spec.f_min_hz,
            achieved_flops=0.0,
            achieved_bw=0.0,
            bound="idle",
            cap_breached=False,
            profile=profile,
        )

    # -- telemetry-facing --------------------------------------------------------

    def power_trace(
        self,
        result: KernelResult,
        *,
        interval_s: float = constants.SENSOR_INTERVAL_S,
        rng: RngLike = None,
        ramp_s: float = 1.0,
        boost: bool = True,
    ) -> np.ndarray:
        """Render a kernel result into a sensor-cadence power series.

        The trace ramps from idle to steady power over ``ramp_s``, holds at
        steady power with Gaussian sensor noise, and — when the device is
        uncapped and the steady power is near TDP — includes a boost
        transient above TDP at the start, which is how the fleet telemetry
        acquires its >=560 W samples (Table IV region 4).  The transient's
        duration comes from the RC thermal model: boost holds until the
        die (starting cool after the launch ramp) reaches the throttle
        limit.
        """
        gen = ensure_rng(rng)
        n = max(1, int(np.ceil(result.time_s / interval_s)))
        t = np.arange(n) * interval_s
        trace = np.full(n, result.power_w)
        ramp = t < ramp_s
        if ramp.any():
            trace[ramp] = self.spec.idle_w + (
                result.power_w - self.spec.idle_w
            ) * (t[ramp] / ramp_s)
        if (
            boost
            and self.uncapped
            and result.power_w > 0.9 * self.spec.tdp_w
        ):
            boost_f = boost_frequency(self.spec)
            boost_p = min(
                self.spec.boost_power_max_w,
                result.power_w * (boost_f / self.spec.f_max_hz),
            )
            t0 = self.thermal.steady_temp_c(self.spec.idle_w)
            window_s = min(
                self.thermal.boost_window_s(t0, boost_p), 60.0
            )
            boost_n = max(1, int(round(window_s / interval_s)))
            trace[:boost_n] = np.maximum(trace[:boost_n], boost_p)
        trace += gen.normal(0.0, self.spec.sensor_noise_w, size=n)
        return np.maximum(trace, 0.0)
