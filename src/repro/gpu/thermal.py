"""First-order thermal model: why boost is transient.

Frontier is direct-liquid-cooled with medium-temperature water (paper
Section II-A); a module's die temperature follows a first-order RC
response to its power draw:

    C_th * dT/dt = P - (T - T_coolant) / R_th

Boost (power above TDP) is allowed while the die stays below the
throttle limit; because the boost steady-state temperature sits above
the limit, boost can only be held for a finite window — which is why
Table IV's region 4 holds just 1.1 % of GPU-hours and why the paper's
telemetry sees boost only as short excursions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError


@dataclass(frozen=True)
class ThermalParams:
    """RC thermal parameters of one MI250X module under liquid cooling."""

    coolant_c: float = 32.0       # facility water temperature
    r_th_k_per_w: float = 0.13    # junction-to-coolant resistance
    tau_s: float = 15.0           # RC time constant (die + cold plate)
    throttle_c: float = 105.0     # boost throttle limit

    def __post_init__(self) -> None:
        if self.r_th_k_per_w <= 0 or self.tau_s <= 0:
            raise SpecError("thermal resistance and tau must be positive")
        if self.throttle_c <= self.coolant_c:
            raise SpecError("throttle limit must exceed coolant temperature")

    @property
    def c_th_j_per_k(self) -> float:
        return self.tau_s / self.r_th_k_per_w


class ThermalModel:
    """Evaluate the RC response analytically (no time stepping needed)."""

    def __init__(self, params: ThermalParams | None = None) -> None:
        self.params = params if params is not None else ThermalParams()

    def steady_temp_c(self, power_w: float) -> float:
        """Equilibrium die temperature at a constant power."""
        p = self.params
        return p.coolant_c + power_w * p.r_th_k_per_w

    def temp_after(self, t0_c: float, power_w: float, dt_s: float) -> float:
        """Temperature after holding ``power_w`` for ``dt_s`` from ``t0_c``."""
        if dt_s < 0:
            raise SpecError("dt must be >= 0")
        p = self.params
        t_inf = self.steady_temp_c(power_w)
        return t_inf + (t0_c - t_inf) * float(np.exp(-dt_s / p.tau_s))

    def boost_window_s(self, t0_c: float, boost_power_w: float) -> float:
        """How long boost power can be held before the throttle trips.

        Returns ``inf`` when the boost steady state sits below the limit
        (sustainable), ``0`` when the die is already at/over the limit.
        """
        p = self.params
        t_inf = self.steady_temp_c(boost_power_w)
        if t0_c >= p.throttle_c:
            return 0.0
        if t_inf <= p.throttle_c:
            return float("inf")
        # Solve T(t) = throttle for the exponential approach to t_inf.
        return p.tau_s * float(
            np.log((t_inf - t0_c) / (t_inf - p.throttle_c))
        )

    def sustainable_power_w(self) -> float:
        """The largest constant power the cooling can hold under the limit."""
        p = self.params
        return (p.throttle_c - p.coolant_c) / p.r_th_k_per_w

    def duty_cycle(self, boost_power_w: float, base_power_w: float) -> float:
        """Long-run fraction of time boost can be held, alternating with
        recovery at ``base_power_w``.

        The classic RC duty cycle: boost until the limit, recover until
        the boost window reopens to its steady alternation; computed from
        the equilibrium of the two exponentials.
        """
        p = self.params
        t_boost_inf = self.steady_temp_c(boost_power_w)
        t_base_inf = self.steady_temp_c(base_power_w)
        if t_boost_inf <= p.throttle_c:
            return 1.0
        # Alternating between the limit and a recovery temperature T_r:
        # equal log-ratios give the steady cycle; a single-degree
        # hysteresis band approximates firmware behaviour.  A base that
        # cannot cool below the recovery point never re-arms boost.
        t_rec = p.throttle_c - 1.0
        if t_base_inf >= t_rec:
            return 0.0
        up = p.tau_s * np.log((t_boost_inf - t_rec) / (t_boost_inf - p.throttle_c))
        down = p.tau_s * np.log((p.throttle_c - t_base_inf) / (t_rec - t_base_inf))
        return float(up / (up + down))
