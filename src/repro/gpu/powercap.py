"""Power-cap feedback controller.

Models firmware power capping (``rocm-smi --setpoweroverdrive`` style): a
feedback loop that lowers the *core* clock until the **metered** power —
the managed domain only — meets the cap.  Three behaviours measured by the
paper fall out of this model:

* the controller cannot see (or throttle) roughly half of the HBM/uncore
  power, so a memory-saturated stream is untouched by a 300 W cap even
  though the module draws ~374 W, while a 200 W cap parks the core at
  f_min and the module *still* draws above the cap — the breached curves
  of Fig 6(d);
* kernels whose metered power is already below the cap are unaffected
  ("a power limit only affects codes surpassing the limit");
* unlike a frequency cap, a power cap never engages the low uncore
  P-state, so it saves less energy on memory-intensive workloads — the
  asymmetry behind Table V(a) vs V(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import CapError
from .kernel import KernelBatch, KernelSpec
from .perf import (
    BatchProfile,
    ExecutionProfile,
    execute,
    execute_batch,
    power_activities_batch,
)
from .power import (
    metered_power,
    metered_power_batch,
    metered_power_from_activities,
    steady_power,
    steady_power_batch,
)
from .specs import MI250XSpec

#: Bisection tolerance on frequency, Hz (≈0.1 MHz: far below a DVFS step).
_F_TOL_HZ = 1e5

#: Breach reporting tolerance (W): real controllers regulate to within a
#: few watts, so tiny overshoots from the unmetered domain do not count.
_BREACH_TOL_W = 2.0


@dataclass(frozen=True)
class CapSolution:
    """Outcome of power-cap enforcement for one kernel."""

    f_core_hz: float
    profile: ExecutionProfile
    power_w: float     # actual module power (may exceed the cap)
    metered_w: float   # what the controller's meter reads
    breached: bool     # actual power exceeds the cap


def _solve(spec: MI250XSpec, kernel: KernelSpec, f_hz: float):
    profile = execute(spec, kernel, f_hz)
    metered = metered_power(spec, profile, f_hz)
    actual = steady_power(spec, profile, f_core_hz=f_hz, uncore_capped=False)
    return profile, metered, actual


def enforce_power_cap(
    spec: MI250XSpec, kernel: KernelSpec, cap_w: float
) -> CapSolution:
    """Find the operating point under a power cap for ``kernel``.

    Bisects on the core frequency; the metered power is monotone
    non-decreasing in the clock for every kernel this model can express.

    Solutions are memoized on ``(spec, kernel, cap)`` — both dataclasses
    are frozen, so the triple is a complete fingerprint — because governor
    loops and node accounting re-solve identical inputs constantly and
    each solve costs ~20 model evaluations.
    """
    return _enforce_power_cap_cached(spec, kernel, float(cap_w))


def clear_powercap_cache() -> None:
    """Drop all memoized power-cap solutions (used by timing harnesses)."""
    _enforce_power_cap_cached.cache_clear()


@lru_cache(maxsize=4096)
def _enforce_power_cap_cached(
    spec: MI250XSpec, kernel: KernelSpec, cap_w: float
) -> CapSolution:
    if cap_w <= 0:
        raise CapError(f"power cap must be positive, got {cap_w} W")
    if cap_w < spec.idle_w:
        raise CapError(
            f"power cap {cap_w:.0f} W below idle power {spec.idle_w:.0f} W"
        )

    profile_hi, m_hi, p_hi = _solve(spec, kernel, spec.f_max_hz)
    if m_hi <= cap_w:
        return CapSolution(
            spec.f_max_hz, profile_hi, p_hi, m_hi, breached=p_hi > cap_w + _BREACH_TOL_W
        )

    profile_lo, m_lo, p_lo = _solve(spec, kernel, spec.f_min_hz)
    if m_lo > cap_w:
        # Even the slowest clock breaches the metered cap: HBM floor.
        return CapSolution(
            spec.f_min_hz, profile_lo, p_lo, m_lo, breached=p_lo > cap_w + _BREACH_TOL_W
        )

    lo, hi = spec.f_min_hz, spec.f_max_hz
    while hi - lo > _F_TOL_HZ:
        mid = 0.5 * (lo + hi)
        _, m_mid, _ = _solve(spec, kernel, mid)
        if m_mid <= cap_w:
            lo = mid
        else:
            hi = mid
    profile, metered, actual = _solve(spec, kernel, lo)
    return CapSolution(lo, profile, actual, metered, breached=actual > cap_w + _BREACH_TOL_W)


# -- batched (array-in/array-out) path ------------------------------------------


@dataclass(frozen=True)
class BatchCapSolution:
    """Outcome of power-cap enforcement for every point of a batch."""

    f_core_hz: np.ndarray
    profile: BatchProfile
    power_w: np.ndarray      # actual module power (may exceed the cap)
    metered_w: np.ndarray    # what the controller's meter reads
    breached: np.ndarray     # actual power exceeds the cap (bool)


def _solve_batch(spec: MI250XSpec, batch: KernelBatch, f_hz: np.ndarray):
    profile = execute_batch(spec, batch, f_hz)
    metered = metered_power_batch(spec, profile, f_hz)
    actual = steady_power_batch(
        spec, profile, f_core_hz=f_hz, uncore_capped=False
    )
    return profile, metered, actual


def _metered_batch(
    spec: MI250XSpec, batch: KernelBatch, f_hz: np.ndarray
) -> np.ndarray:
    """Meter reading only — the bisection loop never needs actual power,
    bound labels, or achieved rates, so it runs the lean activity pass."""
    core, hbm, l2, stall = power_activities_batch(spec, batch, f_hz)
    return metered_power_from_activities(spec, f_hz, core, hbm, l2, stall)


def enforce_power_cap_batch(
    spec: MI250XSpec, batch: KernelBatch, caps_w: np.ndarray
) -> BatchCapSolution:
    """Solve the power-cap operating point for every grid point at once.

    Wraps :func:`solve_power_cap_frequencies` (the frequency search) with
    a full profile/power evaluation at the solved clocks — the batched
    :func:`enforce_power_cap`.
    """
    caps, f = solve_power_cap_frequencies(spec, batch, caps_w)
    profile, metered, actual = _solve_batch(spec, batch, f)
    return BatchCapSolution(
        f_core_hz=f,
        profile=profile,
        power_w=actual,
        metered_w=metered,
        breached=actual > caps + _BREACH_TOL_W,
    )


def solve_power_cap_frequencies(
    spec: MI250XSpec, batch: KernelBatch, caps_w: np.ndarray
):
    """The core-clock each grid point's power cap settles at.

    The scalar bisection halves the same ``[f_min, f_max]`` interval for
    every point, so all points stay lock-stepped: one ``(n,)`` lo/hi array
    pair and ~20 whole-array model evaluations replace ~20 scalar
    evaluations *per point*.  Midpoint arithmetic is identical to the
    scalar loop, so the solved frequencies match the scalar oracle
    bitwise.  Returns ``(caps, f_core_hz)``; callers that need powers or
    profiles evaluate at the returned clocks themselves.
    """
    n = len(batch)
    caps = np.broadcast_to(
        np.asarray(caps_w, dtype=np.float64), (n,)
    ).copy()
    if np.any(caps <= 0):
        bad = caps[caps <= 0][0]
        raise CapError(f"power cap must be positive, got {bad} W")
    if np.any(caps < spec.idle_w):
        bad = caps[caps < spec.idle_w][0]
        raise CapError(
            f"power cap {bad:.0f} W below idle power {spec.idle_w:.0f} W"
        )
    f = np.full(n, spec.f_max_hz)
    if n:
        m_hi = _metered_batch(spec, batch, f)
        need = np.flatnonzero(m_hi > caps)
        if need.size:
            # Whole-batch endpoint evaluation: the rows outside ``need``
            # are wasted arithmetic, but a second pass over the same
            # (traffic-memoized) batch is cheaper than materializing a
            # sub-batch for it.
            m_lo_all = _metered_batch(spec, batch, np.full(n, spec.f_min_hz))
            # Even the slowest clock breaches the metered cap: HBM floor.
            floor = m_lo_all[need] > caps[need]
            f[need[floor]] = spec.f_min_hz
            bis = need[~floor]
            if bis.size:
                kb = batch.select(bis)
                cap_b = caps[bis]
                lo = np.full(bis.size, spec.f_min_hz)
                hi = np.full(bis.size, spec.f_max_hz)
                # hi - lo is the same halved interval at every point, so
                # the loop count matches the scalar bisection exactly.
                while (hi - lo).max() > _F_TOL_HZ:
                    mid = 0.5 * (lo + hi)
                    fits = _metered_batch(spec, kb, mid) <= cap_b
                    lo = np.where(fits, mid, lo)
                    hi = np.where(fits, hi, mid)
                f[bis] = lo
    return caps, f
