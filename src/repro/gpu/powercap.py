"""Power-cap feedback controller.

Models firmware power capping (``rocm-smi --setpoweroverdrive`` style): a
feedback loop that lowers the *core* clock until the **metered** power —
the managed domain only — meets the cap.  Three behaviours measured by the
paper fall out of this model:

* the controller cannot see (or throttle) roughly half of the HBM/uncore
  power, so a memory-saturated stream is untouched by a 300 W cap even
  though the module draws ~374 W, while a 200 W cap parks the core at
  f_min and the module *still* draws above the cap — the breached curves
  of Fig 6(d);
* kernels whose metered power is already below the cap are unaffected
  ("a power limit only affects codes surpassing the limit");
* unlike a frequency cap, a power cap never engages the low uncore
  P-state, so it saves less energy on memory-intensive workloads — the
  asymmetry behind Table V(a) vs V(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CapError
from .kernel import KernelSpec
from .perf import ExecutionProfile, execute
from .power import metered_power, steady_power
from .specs import MI250XSpec

#: Bisection tolerance on frequency, Hz (≈0.1 MHz: far below a DVFS step).
_F_TOL_HZ = 1e5

#: Breach reporting tolerance (W): real controllers regulate to within a
#: few watts, so tiny overshoots from the unmetered domain do not count.
_BREACH_TOL_W = 2.0


@dataclass(frozen=True)
class CapSolution:
    """Outcome of power-cap enforcement for one kernel."""

    f_core_hz: float
    profile: ExecutionProfile
    power_w: float     # actual module power (may exceed the cap)
    metered_w: float   # what the controller's meter reads
    breached: bool     # actual power exceeds the cap


def _solve(spec: MI250XSpec, kernel: KernelSpec, f_hz: float):
    profile = execute(spec, kernel, f_hz)
    metered = metered_power(spec, profile, f_hz)
    actual = steady_power(spec, profile, f_core_hz=f_hz, uncore_capped=False)
    return profile, metered, actual


def enforce_power_cap(
    spec: MI250XSpec, kernel: KernelSpec, cap_w: float
) -> CapSolution:
    """Find the operating point under a power cap for ``kernel``.

    Bisects on the core frequency; the metered power is monotone
    non-decreasing in the clock for every kernel this model can express.
    """
    if cap_w <= 0:
        raise CapError(f"power cap must be positive, got {cap_w} W")
    if cap_w < spec.idle_w:
        raise CapError(
            f"power cap {cap_w:.0f} W below idle power {spec.idle_w:.0f} W"
        )

    profile_hi, m_hi, p_hi = _solve(spec, kernel, spec.f_max_hz)
    if m_hi <= cap_w:
        return CapSolution(
            spec.f_max_hz, profile_hi, p_hi, m_hi, breached=p_hi > cap_w + _BREACH_TOL_W
        )

    profile_lo, m_lo, p_lo = _solve(spec, kernel, spec.f_min_hz)
    if m_lo > cap_w:
        # Even the slowest clock breaches the metered cap: HBM floor.
        return CapSolution(
            spec.f_min_hz, profile_lo, p_lo, m_lo, breached=p_lo > cap_w + _BREACH_TOL_W
        )

    lo, hi = spec.f_min_hz, spec.f_max_hz
    while hi - lo > _F_TOL_HZ:
        mid = 0.5 * (lo + hi)
        _, m_mid, _ = _solve(spec, kernel, mid)
        if m_mid <= cap_w:
            lo = mid
        else:
            hi = mid
    profile, metered, actual = _solve(spec, kernel, lo)
    return CapSolution(lo, profile, actual, metered, breached=actual > cap_w + _BREACH_TOL_W)
