"""A Frontier compute node: four MI250X modules plus a CPU.

The node model exists for two reasons:

* Fig 2(b) of the paper compares GPU vs CPU energy at the node level, so
  the node must account for CPU package power alongside the GPUs;
* the fleet telemetry generator emits per-node records (node input power,
  per-GPU power), matching the out-of-band sensor layout on Frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .device import GPUDevice, KernelResult
from .kernel import KernelSpec
from .specs import NodeSpec


@dataclass(frozen=True)
class NodePowerSample:
    """One node-level power observation."""

    gpu_power_w: np.ndarray   # per-GPU module power, shape (gpus_per_node,)
    cpu_power_w: float
    overhead_w: float

    @property
    def node_input_w(self) -> float:
        return float(self.gpu_power_w.sum() + self.cpu_power_w + self.overhead_w)

    @property
    def gpu_fraction(self) -> float:
        """Fraction of node input power drawn by the GPUs."""
        return float(self.gpu_power_w.sum() / self.node_input_w)


class FrontierNode:
    """One compute node: 4 GPUs (8 GCDs) + 1 CPU + board overhead."""

    def __init__(self, spec: Optional[NodeSpec] = None) -> None:
        self.spec = spec if spec is not None else NodeSpec()
        self.gpus: List[GPUDevice] = [
            GPUDevice(self.spec.gpu) for _ in range(self.spec.gpus_per_node)
        ]

    def set_frequency_cap(self, cap_hz: Optional[float]) -> None:
        """Apply a frequency cap to every GPU on the node."""
        for gpu in self.gpus:
            gpu.set_frequency_cap(cap_hz)

    def set_power_cap(self, cap_w: Optional[float]) -> None:
        """Apply a power cap to every GPU on the node."""
        for gpu in self.gpus:
            gpu.set_power_cap(cap_w)

    def run_replicated(self, kernel: KernelSpec) -> List[KernelResult]:
        """Run the same kernel on every GPU (the paper's MPI launch style).

        The VAI benchmark runs embarrassingly parallel with one rank per
        GCD operating on its own copy of the data, so each module sees an
        identical workload.
        """
        return [gpu.run(kernel) for gpu in self.gpus]

    def sample(
        self,
        gpu_power_w: Sequence[float],
        cpu_load: float,
    ) -> NodePowerSample:
        """Assemble a node-level sample from component observations."""
        arr = np.asarray(gpu_power_w, dtype=float)
        if arr.shape != (self.spec.gpus_per_node,):
            raise ValueError(
                f"expected {self.spec.gpus_per_node} GPU power values, "
                f"got shape {arr.shape}"
            )
        return NodePowerSample(
            gpu_power_w=arr,
            cpu_power_w=self.spec.cpu_power_w(cpu_load),
            overhead_w=self.spec.overhead_w,
        )
