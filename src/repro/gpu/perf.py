"""Roofline execution-time model.

Given a kernel and a core frequency, compute the kernel's runtime and the
activity factors the power model consumes.  The model is the classic
roofline ``t = max(t_compute, t_memory)`` with three refinements the
paper's measurements require:

* the memory term uses the cache-composed, issue-capped bandwidth from
  :mod:`repro.gpu.cache`, so VAI-style kernels slow under DVFS even when
  memory-bound while deep-issue load kernels do not;
* occupancy and divergence derate the compute roof (sparse graph kernels);
* a fixed launch overhead accounts for host-side serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import TrafficSplit, resolve_traffic
from .kernel import KernelSpec
from .specs import MI250XSpec


@dataclass(frozen=True)
class ExecutionProfile:
    """Performance outcome of one kernel at one operating point."""

    time_s: float
    f_hz: float
    achieved_flops: float        # FLOP/s sustained over the kernel
    achieved_bw: float           # bytes/s over all traffic
    bound: str                   # "compute" | "memory" | "issue" | "overhead"
    traffic: TrafficSplit
    # Activity factors in [0, 1] for the power model:
    core_activity: float         # ALU issue-slot occupancy at current clock
    hbm_activity: float          # fraction of peak HBM bandwidth in use
    l2_activity: float           # fraction of current L2 bandwidth in use
    stall_activity: float = 0.0  # resident-stall core power fraction


def compute_roof(spec: MI250XSpec, kernel: KernelSpec, f_hz: float) -> float:
    """Kernel-reachable FLOP/s at core frequency ``f_hz``."""
    return (
        spec.achievable_flops
        * (f_hz / spec.f_max_hz)
        * kernel.compute_efficiency
        * kernel.occupancy
        * (1.0 - kernel.divergence)
    )


def execute(spec: MI250XSpec, kernel: KernelSpec, f_hz: float) -> ExecutionProfile:
    """Run ``kernel`` at core frequency ``f_hz`` and profile it."""
    f_hz = spec.clamp_frequency(f_hz)
    traffic = resolve_traffic(spec, kernel, f_hz)

    t_comp = 0.0
    if kernel.flops > 0:
        t_comp = kernel.flops / compute_roof(spec, kernel, f_hz)
    t_mem = 0.0
    total_bytes = kernel.total_bytes
    if total_bytes > 0:
        t_mem = total_bytes / traffic.effective_bw

    busy = max(t_comp, t_mem)
    time_s = busy + kernel.launch_overhead_s
    if time_s <= 0:
        # KernelSpec guarantees some work exists, so this is unreachable
        # unless a roof is infinite; guard regardless.
        time_s = max(time_s, 1e-12)

    if kernel.launch_overhead_s > busy:
        bound = "overhead"
    elif t_comp >= t_mem:
        bound = "compute"
    elif traffic.issue_limited:
        bound = "issue"
    else:
        bound = "memory"

    achieved_flops = kernel.flops / time_s
    achieved_bw = total_bytes / time_s

    # Power accounting activities.  The core activity is issue-slot
    # occupancy at the *current* clock; the HBM activity is absolute
    # bandwidth utilization (HBM power does not depend on the core clock
    # except through the psi() uncore scale applied by the power model).
    clock_flops = spec.achievable_flops * (f_hz / spec.f_max_hz)
    core_act = min(1.0, achieved_flops / clock_flops) if clock_flops > 0 else 0.0
    hbm_act = 0.0
    if traffic.hbm_bytes > 0:
        hbm_act = min(1.0, (traffic.hbm_bytes / time_s) / spec.achievable_hbm_bw)
    l2_act = 0.0
    l2_full_bw = spec.l2_bw_max * (f_hz / spec.f_max_hz)
    if traffic.l2_bytes > 0 and l2_full_bw > 0:
        l2_act = min(1.0, (traffic.l2_bytes / time_s) / l2_full_bw)

    return ExecutionProfile(
        time_s=time_s,
        f_hz=f_hz,
        achieved_flops=achieved_flops,
        achieved_bw=achieved_bw,
        bound=bound,
        traffic=traffic,
        core_activity=core_act,
        hbm_activity=hbm_act,
        l2_activity=l2_act,
        stall_activity=kernel.stall_power_fraction,
    )
