"""Roofline execution-time model.

Given a kernel and a core frequency, compute the kernel's runtime and the
activity factors the power model consumes.  The model is the classic
roofline ``t = max(t_compute, t_memory)`` with three refinements the
paper's measurements require:

* the memory term uses the cache-composed, issue-capped bandwidth from
  :mod:`repro.gpu.cache`, so VAI-style kernels slow under DVFS even when
  memory-bound while deep-issue load kernels do not;
* occupancy and divergence derate the compute roof (sparse graph kernels);
* a fixed launch overhead accounts for host-side serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import TrafficSplit, resolve_traffic
from .kernel import KernelBatch, KernelSpec
from .specs import MI250XSpec

#: Bound labels indexed by the integer codes of :class:`BatchProfile`.
BOUND_LABELS = np.array(["compute", "memory", "issue", "overhead"])


@dataclass(frozen=True)
class ExecutionProfile:
    """Performance outcome of one kernel at one operating point."""

    time_s: float
    f_hz: float
    achieved_flops: float        # FLOP/s sustained over the kernel
    achieved_bw: float           # bytes/s over all traffic
    bound: str                   # "compute" | "memory" | "issue" | "overhead"
    traffic: TrafficSplit
    # Activity factors in [0, 1] for the power model:
    core_activity: float         # ALU issue-slot occupancy at current clock
    hbm_activity: float          # fraction of peak HBM bandwidth in use
    l2_activity: float           # fraction of current L2 bandwidth in use
    stall_activity: float = 0.0  # resident-stall core power fraction


def compute_roof(spec: MI250XSpec, kernel: KernelSpec, f_hz: float) -> float:
    """Kernel-reachable FLOP/s at core frequency ``f_hz``."""
    return (
        spec.achievable_flops
        * (f_hz / spec.f_max_hz)
        * kernel.compute_efficiency
        * kernel.occupancy
        * (1.0 - kernel.divergence)
    )


def execute(spec: MI250XSpec, kernel: KernelSpec, f_hz: float) -> ExecutionProfile:
    """Run ``kernel`` at core frequency ``f_hz`` and profile it."""
    f_hz = spec.clamp_frequency(f_hz)
    traffic = resolve_traffic(spec, kernel, f_hz)

    t_comp = 0.0
    if kernel.flops > 0:
        t_comp = kernel.flops / compute_roof(spec, kernel, f_hz)
    t_mem = 0.0
    total_bytes = kernel.total_bytes
    if total_bytes > 0:
        t_mem = total_bytes / traffic.effective_bw

    busy = max(t_comp, t_mem)
    time_s = busy + kernel.launch_overhead_s
    if time_s <= 0:
        # KernelSpec guarantees some work exists, so this is unreachable
        # unless a roof is infinite; guard regardless.
        time_s = max(time_s, 1e-12)

    if kernel.launch_overhead_s > busy:
        bound = "overhead"
    elif t_comp >= t_mem:
        bound = "compute"
    elif traffic.issue_limited:
        bound = "issue"
    else:
        bound = "memory"

    achieved_flops = kernel.flops / time_s
    achieved_bw = total_bytes / time_s

    # Power accounting activities.  The core activity is issue-slot
    # occupancy at the *current* clock; the HBM activity is absolute
    # bandwidth utilization (HBM power does not depend on the core clock
    # except through the psi() uncore scale applied by the power model).
    clock_flops = spec.achievable_flops * (f_hz / spec.f_max_hz)
    core_act = min(1.0, achieved_flops / clock_flops) if clock_flops > 0 else 0.0
    hbm_act = 0.0
    if traffic.hbm_bytes > 0:
        hbm_act = min(1.0, (traffic.hbm_bytes / time_s) / spec.achievable_hbm_bw)
    l2_act = 0.0
    l2_full_bw = spec.l2_bw_max * (f_hz / spec.f_max_hz)
    if traffic.l2_bytes > 0 and l2_full_bw > 0:
        l2_act = min(1.0, (traffic.l2_bytes / time_s) / l2_full_bw)

    return ExecutionProfile(
        time_s=time_s,
        f_hz=f_hz,
        achieved_flops=achieved_flops,
        achieved_bw=achieved_bw,
        bound=bound,
        traffic=traffic,
        core_activity=core_act,
        hbm_activity=hbm_act,
        l2_activity=l2_act,
        stall_activity=kernel.stall_power_fraction,
    )


# -- batched (array-in/array-out) path ------------------------------------------


@dataclass(frozen=True)
class BatchProfile:
    """Struct-of-arrays :class:`ExecutionProfile` for ``n`` grid points.

    One row per (kernel, frequency) point; every column is a float64 (or
    bool/int) array of equal length.  Arithmetic mirrors the scalar
    :func:`execute` expression-for-expression so batch results match the
    scalar oracle bitwise.
    """

    time_s: np.ndarray
    f_hz: np.ndarray
    achieved_flops: np.ndarray
    achieved_bw: np.ndarray
    bound_code: np.ndarray       # index into BOUND_LABELS
    core_activity: np.ndarray
    hbm_activity: np.ndarray
    l2_activity: np.ndarray
    stall_activity: np.ndarray
    l2_bytes: np.ndarray
    hbm_bytes: np.ndarray
    l2_hit_fraction: np.ndarray
    issue_limited: np.ndarray    # bool

    def __len__(self) -> int:
        return len(self.time_s)

    @property
    def bound(self) -> np.ndarray:
        """Bound labels ("compute" | "memory" | "issue" | "overhead")."""
        return BOUND_LABELS[self.bound_code]


@dataclass(frozen=True)
class _BatchTraffic:
    """Frequency-independent traffic columns of a batch (memoized).

    Where the bytes land — the L2 hit fraction and the byte split — does
    not depend on the clock, so the power-cap bisection (which evaluates
    the same kernels at ~20 clocks) reuses one resolution.
    """

    total: np.ndarray
    hit: np.ndarray
    l2_bytes: np.ndarray
    hbm_bytes: np.ndarray
    no_bytes: np.ndarray     # bool: workless (flops-only) kernels
    bw_hbm: np.ndarray       # occupancy-derated HBM bandwidth
    # Frequency-independent subexpressions of the roofline, hoisted so the
    # power-cap bisection (~20 evaluations of the same batch) skips them.
    hbm_denom: np.ndarray    # where(hit < 1, (1 - hit) / bw_hbm, 0)
    hit_pos: np.ndarray      # hit > 0
    has_flops: np.ndarray    # flops > 0
    total_pos: np.ndarray    # total > 0
    hbm_pos: np.ndarray      # hbm_bytes > 0
    l2_pos: np.ndarray       # l2_bytes > 0


def _resolve_traffic_batch(spec: MI250XSpec, batch: KernelBatch) -> _BatchTraffic:
    memo = getattr(batch, "_traffic_memo", None)
    if memo is None:
        memo = {}
        object.__setattr__(batch, "_traffic_memo", memo)
    # Keyed by identity: hashing the many-field spec dataclass on every
    # bisection step costs more than the resolution it guards.  The entry
    # stores the spec itself so the id cannot be recycled while cached.
    cached = memo.get(id(spec))
    if cached is not None:
        return cached[1]
    if len(memo) >= 8:
        # Long-lived batches evaluated under many distinct spec objects
        # would otherwise accumulate entries without bound.
        memo.clear()
    total = batch.hbm_bytes + batch.l2_bytes
    has_ws = ~np.isnan(batch.working_set_bytes)
    with np.errstate(invalid="ignore"):
        ratio = batch.working_set_bytes / spec.l2_bytes
        hit_ws = np.where(ratio <= 1.0, 1.0, np.maximum(0.0, 2.0 - ratio))
        hit_split = np.where(
            total > 0, batch.l2_bytes / np.where(total > 0, total, 1.0), 0.0
        )
        hit = np.where(
            has_ws, np.where(np.isnan(hit_ws), 0.0, hit_ws), hit_split
        )
        l2_b = np.where(has_ws, total * hit, batch.l2_bytes)
        hbm_b = np.where(has_ws, total * (1.0 - hit), batch.hbm_bytes)
    no_bytes = total <= 0
    hit = np.where(no_bytes, 0.0, hit)
    l2_b = np.where(no_bytes, 0.0, l2_b)
    hbm_b = np.where(no_bytes, 0.0, hbm_b)
    bw_hbm = spec.achievable_hbm_bw * batch.occupancy
    with np.errstate(divide="ignore", invalid="ignore"):
        hbm_denom = np.where(hit < 1, (1.0 - hit) / bw_hbm, 0.0)
    out = _BatchTraffic(
        total=total,
        hit=hit,
        l2_bytes=l2_b,
        hbm_bytes=hbm_b,
        no_bytes=no_bytes,
        bw_hbm=bw_hbm,
        hbm_denom=hbm_denom,
        hit_pos=hit > 0,
        has_flops=batch.flops > 0,
        total_pos=total > 0,
        hbm_pos=hbm_b > 0,
        l2_pos=l2_b > 0,
    )
    memo[id(spec)] = (spec, out)
    return out


def power_activities_batch(spec: MI250XSpec, batch: KernelBatch, f_hz):
    """Just the activity factors the power models consume, in one pass.

    The power-cap bisection evaluates the same kernels at ~20 clocks and
    only ever reads the meter, so this lean sibling of
    :func:`execute_batch` computes the roofline time and the four activity
    columns with the *same expressions in the same order* (bitwise-equal
    values) while skipping the bound classification and achieved-rate
    bookkeeping a full profile carries.

    Unlike :func:`execute_batch` this does not clamp ``f_hz``: the
    bisection only ever evaluates frequencies inside ``[f_min, f_max]``,
    where the clamp is an identity.

    The guard ``where``/comparison pairs of the full path are elided where
    the guarded quantity is provably positive (``f >= f_min > 0`` makes
    every clock-derived rate positive) or where the guarded branch is
    overwritten by a later mask (``0 / inf == 0`` on workless rows) —
    the surviving values are bitwise identical.

    Returns ``(core_activity, hbm_activity, l2_activity, stall_activity)``.
    """
    n = len(batch)
    f = np.asarray(f_hz, dtype=np.float64)
    if f.shape != (n,):
        f = np.broadcast_to(f, (n,))

    occ = batch.occupancy
    traffic = _resolve_traffic_batch(spec, batch)
    total, hit = traffic.total, traffic.hit
    l2_b, hbm_b = traffic.l2_bytes, traffic.hbm_bytes
    no_bytes = traffic.no_bytes
    with np.errstate(divide="ignore", invalid="ignore"):
        x = f / spec.f_max_hz
        bw_l2 = spec.l2_bw_max * x * occ
        ceiling = (
            batch.issue_bw_factor * x * spec.achievable_hbm_bw
        ) * occ

        denom = np.where(traffic.hit_pos, hit / bw_l2, 0.0) + traffic.hbm_denom
        composed = np.where(denom > 0, 1.0 / denom, np.inf)
        effective = np.minimum(composed, ceiling)
        effective = np.where(no_bytes, np.inf, effective)

        roof = (
            spec.achievable_flops
            * x
            * batch.compute_efficiency
            * occ
            * (1.0 - batch.divergence)
        )
        t_comp = np.where(traffic.has_flops, batch.flops / roof, 0.0)
        t_mem = np.where(traffic.total_pos, total / effective, 0.0)
        busy = np.maximum(t_comp, t_mem)
        time_s = busy + batch.launch_overhead_s
        time_s = np.where(time_s <= 0, 1e-12, time_s)

        achieved_flops = batch.flops / time_s
        clock_flops = spec.achievable_flops * x
        core_act = np.minimum(1.0, achieved_flops / clock_flops)
        hbm_act = np.where(
            traffic.hbm_pos,
            np.minimum(1.0, (hbm_b / time_s) / spec.achievable_hbm_bw),
            0.0,
        )
        l2_full_bw = spec.l2_bw_max * x
        l2_act = np.where(
            traffic.l2_pos,
            np.minimum(1.0, (l2_b / time_s) / l2_full_bw),
            0.0,
        )
    return core_act, hbm_act, l2_act, batch.stall_power_fraction


def execute_batch(
    spec: MI250XSpec, batch: KernelBatch, f_hz: np.ndarray
) -> BatchProfile:
    """Run every kernel of ``batch`` at its paired frequency in one pass.

    ``f_hz`` broadcasts against the batch length; the returned profile has
    one row per point.  Equivalent to ``[execute(spec, k, f) ...]`` but
    evaluated as whole-array NumPy expressions.
    """
    n = len(batch)
    f = np.broadcast_to(np.asarray(f_hz, dtype=np.float64), (n,))
    f = np.minimum(np.maximum(f, spec.f_min_hz), spec.f_max_hz)

    # Traffic resolution (vectorized resolve_traffic; split memoized).
    occ = batch.occupancy
    traffic = _resolve_traffic_batch(spec, batch)
    total, hit = traffic.total, traffic.hit
    l2_b, hbm_b = traffic.l2_bytes, traffic.hbm_bytes
    no_bytes = traffic.no_bytes
    with np.errstate(divide="ignore", invalid="ignore"):
        x = f / spec.f_max_hz
        bw_l2 = spec.l2_bw_max * x * occ
        ceiling = (
            batch.issue_bw_factor * x * spec.achievable_hbm_bw
        ) * occ

        denom = np.where(traffic.hit_pos, hit / bw_l2, 0.0) + traffic.hbm_denom
        composed = np.where(denom > 0, 1.0 / np.where(denom > 0, denom, 1.0),
                            np.inf)
        effective = np.minimum(composed, ceiling)
        issue_limited = ceiling < composed

        # Workless kernels: effective bandwidth is infinite and the issue
        # ceiling never engages (matches the scalar early return).
        effective = np.where(no_bytes, np.inf, effective)
        issue_limited = np.where(no_bytes, False, issue_limited)

        # Roofline times.
        roof = (
            spec.achievable_flops
            * x
            * batch.compute_efficiency
            * occ
            * (1.0 - batch.divergence)
        )
        t_comp = np.where(traffic.has_flops, batch.flops / roof, 0.0)
        t_mem = np.where(
            traffic.total_pos, total / np.where(no_bytes, 1.0, effective), 0.0
        )
        busy = np.maximum(t_comp, t_mem)
        time_s = busy + batch.launch_overhead_s
        time_s = np.where(time_s <= 0, 1e-12, time_s)

        bound_code = np.where(
            batch.launch_overhead_s > busy,
            3,                                       # overhead
            np.where(
                t_comp >= t_mem,
                0,                                   # compute
                np.where(issue_limited, 2, 1),       # issue | memory
            ),
        )

        achieved_flops = batch.flops / time_s
        achieved_bw = total / time_s

        clock_flops = spec.achievable_flops * x
        core_act = np.where(
            clock_flops > 0,
            np.minimum(1.0, achieved_flops / np.where(clock_flops > 0,
                                                      clock_flops, 1.0)),
            0.0,
        )
        hbm_act = np.where(
            traffic.hbm_pos,
            np.minimum(1.0, (hbm_b / time_s) / spec.achievable_hbm_bw),
            0.0,
        )
        l2_full_bw = spec.l2_bw_max * x
        l2_act = np.where(
            traffic.l2_pos & (l2_full_bw > 0),
            np.minimum(
                1.0,
                (l2_b / time_s) / np.where(l2_full_bw > 0, l2_full_bw, 1.0),
            ),
            0.0,
        )

    return BatchProfile(
        time_s=time_s,
        f_hz=f,
        achieved_flops=achieved_flops,
        achieved_bw=achieved_bw,
        bound_code=bound_code,
        core_activity=core_act,
        hbm_activity=hbm_act,
        l2_activity=l2_act,
        stall_activity=batch.stall_power_fraction,
        l2_bytes=l2_b,
        hbm_bytes=hbm_b,
        l2_hit_fraction=hit,
        issue_limited=issue_limited,
    )
