"""MI250X GPU power/performance simulator.

This subpackage is the hardware substrate the paper's benchmarks ran on.
The unit of modeling is one MI250X *module* (two GCDs), because the paper's
power figures (idle 88-90 W, TDP 560 W, peak observed 540 W) and the fleet
telemetry are reported per module.

Layers, bottom-up:

* :mod:`repro.gpu.specs`    — device specification dataclasses
* :mod:`repro.gpu.voltage`  — DVFS frequency/voltage curve and scale factors
* :mod:`repro.gpu.kernel`   — kernel descriptors (flops, bytes, locality...)
* :mod:`repro.gpu.cache`    — L2/HBM hierarchy and effective bandwidth
* :mod:`repro.gpu.perf`     — roofline execution-time model
* :mod:`repro.gpu.power`    — steady-state power model
* :mod:`repro.gpu.dvfs`     — frequency-cap governor
* :mod:`repro.gpu.powercap` — power-cap feedback controller
* :mod:`repro.gpu.device`   — :class:`GPUDevice`, the public entry point
* :mod:`repro.gpu.node`     — a Frontier compute node (4 GPUs + CPU)
"""

from .specs import MI250XSpec, NodeSpec, default_spec
from .kernel import KernelBatch, KernelSpec
from .device import BatchResult, GPUDevice, KernelResult
from .node import FrontierNode

__all__ = [
    "MI250XSpec",
    "NodeSpec",
    "default_spec",
    "KernelSpec",
    "KernelBatch",
    "GPUDevice",
    "KernelResult",
    "BatchResult",
    "FrontierNode",
]
