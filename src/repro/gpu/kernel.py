"""Kernel descriptors.

A :class:`KernelSpec` captures everything the simulator needs to know about
one GPU kernel launch: total work (flops, bytes), where the bytes live
(working-set size → L2 hit fraction), and three *character* parameters that
distinguish kernel families:

``issue_bw_factor``
    How much memory-level parallelism the kernel exposes.  Achievable
    memory bandwidth is capped at ``issue_bw_factor * (f/f_max) * B_hbm``,
    modeling address-generation/issue boundness.  The paper's VAI kernel
    (short unrolled FMA bodies between loads) slows down under DVFS even in
    its memory-bound region, so it has a factor barely above 1; the
    GPU-benches load kernel (deep batched loads) has a larger factor and
    stays HBM-bound down to low clocks.

``compute_efficiency``
    Fraction of the device's achievable FLOP roof this kernel can reach.

``occupancy``
    Fraction of the device the grid can keep busy; low-occupancy
    (latency-bound) kernels scale both roofs down and their runtime becomes
    clock-sensitive, which is how sparse-graph workloads behave in Fig 7.

``divergence``
    Wavefront divergence penalty in [0, 1); reduces effective compute.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import KernelError


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel launch, as seen by the simulator."""

    name: str
    flops: float                   # total floating-point operations
    hbm_bytes: float               # bytes that must move to/from HBM
    l2_bytes: float = 0.0          # bytes served from L2
    working_set_bytes: Optional[float] = None  # if set, overrides l2 split
    issue_bw_factor: float = 2.0
    compute_efficiency: float = 1.0
    occupancy: float = 1.0
    divergence: float = 0.0
    launch_overhead_s: float = 0.0  # fixed host-side overhead per launch
    # Core power burned by resident-but-stalled wavefronts (latency-bound
    # kernels keep the clock tree and schedulers busy without retiring
    # flops).  Fraction of full-ALU core power, additive to the flop
    # activity, clamped at 1 by the power model.
    stall_power_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.hbm_bytes < 0 or self.l2_bytes < 0:
            raise KernelError(f"{self.name}: work quantities must be >= 0")
        if self.flops == 0 and self.hbm_bytes == 0 and self.l2_bytes == 0:
            raise KernelError(f"{self.name}: kernel performs no work")
        if self.issue_bw_factor <= 0:
            raise KernelError(f"{self.name}: issue_bw_factor must be > 0")
        if not (0 < self.compute_efficiency <= 1):
            raise KernelError(f"{self.name}: compute_efficiency in (0, 1]")
        if not (0 < self.occupancy <= 1):
            raise KernelError(f"{self.name}: occupancy in (0, 1]")
        if not (0 <= self.divergence < 1):
            raise KernelError(f"{self.name}: divergence in [0, 1)")
        if self.launch_overhead_s < 0:
            raise KernelError(f"{self.name}: launch_overhead_s must be >= 0")
        if not (0 <= self.stall_power_fraction < 1):
            raise KernelError(f"{self.name}: stall_power_fraction in [0, 1)")

    # -- derived ---------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """All bytes moved, regardless of level."""
        return self.hbm_bytes + self.l2_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of *total* traffic (the paper's AI axis)."""
        total = self.total_bytes
        return self.flops / total if total > 0 else float("inf")

    def scaled(self, factor: float) -> "KernelSpec":
        """Return a copy with flops and bytes multiplied by ``factor``.

        Used to extend runtime for steady-state measurement exactly the way
        Algorithm 1's REPEAT constant does.
        """
        if factor <= 0:
            raise KernelError(f"{self.name}: scale factor must be > 0")
        return replace(
            self,
            flops=self.flops * factor,
            hbm_bytes=self.hbm_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
        )

    def with_overrides(self, **kwargs) -> "KernelSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
