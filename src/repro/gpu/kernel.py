"""Kernel descriptors.

A :class:`KernelSpec` captures everything the simulator needs to know about
one GPU kernel launch: total work (flops, bytes), where the bytes live
(working-set size → L2 hit fraction), and three *character* parameters that
distinguish kernel families:

``issue_bw_factor``
    How much memory-level parallelism the kernel exposes.  Achievable
    memory bandwidth is capped at ``issue_bw_factor * (f/f_max) * B_hbm``,
    modeling address-generation/issue boundness.  The paper's VAI kernel
    (short unrolled FMA bodies between loads) slows down under DVFS even in
    its memory-bound region, so it has a factor barely above 1; the
    GPU-benches load kernel (deep batched loads) has a larger factor and
    stays HBM-bound down to low clocks.

``compute_efficiency``
    Fraction of the device's achievable FLOP roof this kernel can reach.

``occupancy``
    Fraction of the device the grid can keep busy; low-occupancy
    (latency-bound) kernels scale both roofs down and their runtime becomes
    clock-sensitive, which is how sparse-graph workloads behave in Fig 7.

``divergence``
    Wavefront divergence penalty in [0, 1); reduces effective compute.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Sequence

import numpy as np

from ..errors import KernelError


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel launch, as seen by the simulator."""

    name: str
    flops: float                   # total floating-point operations
    hbm_bytes: float               # bytes that must move to/from HBM
    l2_bytes: float = 0.0          # bytes served from L2
    working_set_bytes: Optional[float] = None  # if set, overrides l2 split
    issue_bw_factor: float = 2.0
    compute_efficiency: float = 1.0
    occupancy: float = 1.0
    divergence: float = 0.0
    launch_overhead_s: float = 0.0  # fixed host-side overhead per launch
    # Core power burned by resident-but-stalled wavefronts (latency-bound
    # kernels keep the clock tree and schedulers busy without retiring
    # flops).  Fraction of full-ALU core power, additive to the flop
    # activity, clamped at 1 by the power model.
    stall_power_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.hbm_bytes < 0 or self.l2_bytes < 0:
            raise KernelError(f"{self.name}: work quantities must be >= 0")
        if self.flops == 0 and self.hbm_bytes == 0 and self.l2_bytes == 0:
            raise KernelError(f"{self.name}: kernel performs no work")
        if self.issue_bw_factor <= 0:
            raise KernelError(f"{self.name}: issue_bw_factor must be > 0")
        if not (0 < self.compute_efficiency <= 1):
            raise KernelError(f"{self.name}: compute_efficiency in (0, 1]")
        if not (0 < self.occupancy <= 1):
            raise KernelError(f"{self.name}: occupancy in (0, 1]")
        if not (0 <= self.divergence < 1):
            raise KernelError(f"{self.name}: divergence in [0, 1)")
        if self.launch_overhead_s < 0:
            raise KernelError(f"{self.name}: launch_overhead_s must be >= 0")
        if not (0 <= self.stall_power_fraction < 1):
            raise KernelError(f"{self.name}: stall_power_fraction in [0, 1)")

    # -- derived ---------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """All bytes moved, regardless of level."""
        return self.hbm_bytes + self.l2_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of *total* traffic (the paper's AI axis)."""
        total = self.total_bytes
        return self.flops / total if total > 0 else float("inf")

    def scaled(self, factor: float) -> "KernelSpec":
        """Return a copy with flops and bytes multiplied by ``factor``.

        Used to extend runtime for steady-state measurement exactly the way
        Algorithm 1's REPEAT constant does.
        """
        if factor <= 0:
            raise KernelError(f"{self.name}: scale factor must be > 0")
        return replace(
            self,
            flops=self.flops * factor,
            hbm_bytes=self.hbm_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
        )

    def with_overrides(self, **kwargs) -> "KernelSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: Numeric KernelSpec fields packed into :class:`KernelBatch` columns, in
#: declaration order.  ``working_set_bytes`` uses NaN for "not set".
_BATCH_FIELDS = (
    "flops",
    "hbm_bytes",
    "l2_bytes",
    "working_set_bytes",
    "issue_bw_factor",
    "compute_efficiency",
    "occupancy",
    "divergence",
    "launch_overhead_s",
    "stall_power_fraction",
)


@dataclass(frozen=True)
class KernelBatch:
    """A struct-of-arrays view of ``n`` kernels for batched evaluation.

    Each column is a float64 array of equal length; ``working_set_bytes``
    is NaN where the kernel pins an explicit L2/HBM split instead.  Built
    from validated :class:`KernelSpec` objects via :meth:`from_kernels`
    (the normal path) or directly from arrays by internal solvers that
    sweep kernel *parameters* (see :mod:`repro.core.replay`).
    """

    flops: np.ndarray
    hbm_bytes: np.ndarray
    l2_bytes: np.ndarray
    working_set_bytes: np.ndarray   # NaN = explicit split
    issue_bw_factor: np.ndarray
    compute_efficiency: np.ndarray
    occupancy: np.ndarray
    divergence: np.ndarray
    launch_overhead_s: np.ndarray
    stall_power_fraction: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.flops)
        for name in _BATCH_FIELDS:
            col = getattr(self, name)
            if col.shape != (n,):
                raise KernelError(
                    f"batch column {name} must have shape ({n},), "
                    f"got {col.shape}"
                )
        ws = self.working_set_bytes
        if n and np.any(~np.isnan(ws) & (ws <= 0)):
            raise KernelError("working set must be positive")

    @classmethod
    def from_kernels(cls, kernels: Sequence[KernelSpec]) -> "KernelBatch":
        """Pack a sequence of kernels into columnar form."""
        kernels = list(kernels)
        cols = {}
        for name in _BATCH_FIELDS:
            if name == "working_set_bytes":
                cols[name] = np.array(
                    [
                        np.nan if k.working_set_bytes is None
                        else float(k.working_set_bytes)
                        for k in kernels
                    ],
                    dtype=np.float64,
                )
            else:
                cols[name] = np.array(
                    [float(getattr(k, name)) for k in kernels],
                    dtype=np.float64,
                )
        return cls(**cols)

    def __len__(self) -> int:
        return len(self.flops)

    @property
    def total_bytes(self) -> np.ndarray:
        """All bytes moved per kernel, regardless of level."""
        return self.hbm_bytes + self.l2_bytes

    def select(self, index) -> "KernelBatch":
        """Rows at ``index`` (any NumPy fancy index) as a new batch."""
        sub = KernelBatch(
            **{f.name: getattr(self, f.name)[index] for f in fields(self)}
        )
        self._propagate_traffic(sub, lambda col: col[index])
        return sub

    def tile(self, reps: int) -> "KernelBatch":
        """The batch repeated ``reps`` times (cap x kernel cross-products)."""
        if reps <= 0:
            raise KernelError("tile count must be positive")
        out = KernelBatch(
            **{f.name: np.tile(getattr(self, f.name), reps) for f in fields(self)}
        )
        self._propagate_traffic(out, lambda col: np.tile(col, reps))
        return out

    def _propagate_traffic(self, derived: "KernelBatch", op) -> None:
        """Carry resolved traffic (see ``perf._resolve_traffic_batch``)
        onto a row-derived batch.

        Every cached column is an elementwise function of its row's
        inputs, so applying the same row operation to the cache yields
        bitwise-identical values to re-resolving — and the power-cap
        bisection selects sub-batches on its hottest path.
        """
        memo = getattr(self, "_traffic_memo", None)
        if not memo:
            return
        derived_memo = {
            key: (
                spec,
                type(traffic)(
                    **{
                        f.name: op(getattr(traffic, f.name))
                        for f in fields(traffic)
                    }
                ),
            )
            for key, (spec, traffic) in memo.items()
        }
        object.__setattr__(derived, "_traffic_memo", derived_memo)
