"""Device specification dataclasses.

Two kinds of constants live here:

* *datasheet* values (frequencies, TDP, HBM capacity) taken from Table I of
  the paper;
* *calibrated* values (achievable rates, power coefficients, voltage-curve
  shape) fitted so the simulator reproduces the paper's measured anchors:
  540 W peak at arithmetic intensity 4, 380 W for memory-bound streams,
  ~420 W for the compute-bound tail, runtime flat under DVFS for
  HBM-resident sweeps, and the Table III cap-response percentages.

The calibrated compute roof (``achievable_flops``) is deliberately below
the FP64 datasheet peak: the paper's VAI kernel is a portable OpenMP-target
FMA loop whose empirical ridge sits at 4 flops/byte, which pins the
achievable compute-to-bandwidth ratio the simulator must exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import constants, units
from ..errors import SpecError


@dataclass(frozen=True)
class MI250XSpec:
    """Specification + calibration of one MI250X module (two GCDs)."""

    name: str = "MI250X"

    # --- datasheet -----------------------------------------------------------
    f_max_hz: float = constants.GCD_MAX_FREQUENCY_HZ
    f_min_hz: float = constants.GCD_MIN_FREQUENCY_HZ
    tdp_w: float = constants.GCD_MAX_POWER_W
    idle_w: float = constants.GPU_IDLE_POWER_W
    hbm_bytes: float = 2 * constants.HBM_PER_GCD_BYTES
    peak_flops: float = units.tflops(47.9)       # FP64 vector, both GCDs
    peak_hbm_bw: float = units.tbps(3.2768)      # datasheet HBM2e bandwidth

    # --- boost ---------------------------------------------------------------
    boost_f_factor: float = 1.06       # short excursions above f_max
    boost_power_max_w: float = 600.0   # ceiling of boost transients

    # --- calibrated performance roofs ---------------------------------------
    achievable_flops: float = units.tflops(12.0)   # simple-kernel FMA roof
    achievable_hbm_bw: float = units.tbps(3.0)     # ~92 % of datasheet
    l2_bytes: float = units.mib(16)                # paper's L2 threshold
    l2_bw_max: float = units.tbps(9.0)             # L2 roof at f_max

    # --- calibrated power model ----------------------------------------------
    # P = idle + core*a_c*phi(f) + hbm*a_m*psi(f) + l2*a_l2*phi(f)
    #       - cross*a_c*a_m*phi(f)
    core_power_w: float = 330.0     # full-ALU-activity core power at f_max
    hbm_power_w: float = 285.0      # full-bandwidth HBM+uncore power at f_max
    l2_power_w: float = 45.0        # full-bandwidth L2 power at f_max
    cross_power_w: float = 165.0    # sub-additive compute+memory overlap

    # voltage curve v(x) = v0 + v1*x with x = f/f_max, volts
    v0: float = 0.60
    v1: float = 0.50

    # HBM/uncore power frequency response.  When the device is uncapped the
    # uncore runs its full P-state (scale 1.0).  Setting *any* frequency
    # ceiling lets the firmware engage a lower fclk/df P-state, after which
    # the uncore scale follows psi_cap(x) = psi_cap0 + psi_cap1 * x — this
    # step-plus-weak-slope response is what Table III's MB column measures
    # (a ~13 % drop at the first cap, then nearly flat).  A *power* cap
    # does not engage the low uncore P-state (see repro.gpu.powercap).
    psi_cap0: float = 0.70
    psi_cap1: float = 0.13

    # Fraction of the HBM/uncore power term visible to the power-cap
    # controller's meter.  The firmware regulates only the managed domain,
    # which is why low caps are breached by HBM-saturated kernels and a
    # 300 W cap leaves a 374 W memory stream untouched (Fig 6d).
    cap_metered_hbm_fraction: float = 0.75

    sensor_noise_w: float = 2.5     # 1-sigma Gaussian noise on power sensors

    def __post_init__(self) -> None:
        if not (0 < self.f_min_hz < self.f_max_hz):
            raise SpecError("frequency range must satisfy 0 < f_min < f_max")
        if self.idle_w <= 0 or self.tdp_w <= self.idle_w:
            raise SpecError("need 0 < idle_w < tdp_w")
        if self.achievable_flops > self.peak_flops:
            raise SpecError("achievable flops cannot exceed datasheet peak")
        if self.achievable_hbm_bw > self.peak_hbm_bw:
            raise SpecError("achievable bandwidth cannot exceed datasheet peak")
        if min(self.core_power_w, self.hbm_power_w, self.l2_power_w) < 0:
            raise SpecError("power coefficients must be non-negative")
        # Monotonicity of the power surface in each activity requires the
        # cross term to stay below both single-engine coefficients.
        if self.cross_power_w >= min(self.core_power_w, self.hbm_power_w):
            raise SpecError("cross term must be < min(core, hbm) coefficients")

    # -- derived --------------------------------------------------------------

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge (flops/byte) of the achievable roofs at f_max."""
        return self.achievable_flops / self.achievable_hbm_bw

    @property
    def max_steady_power_w(self) -> float:
        """Steady power with compute and memory both saturated at f_max."""
        return (
            self.idle_w
            + self.core_power_w
            + self.hbm_power_w
            - self.cross_power_w
        )

    def clamp_frequency(self, f_hz: float) -> float:
        """Clamp a frequency request into the supported DVFS range."""
        return min(max(f_hz, self.f_min_hz), self.f_max_hz)

    def with_overrides(self, **kwargs) -> "MI250XSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class NodeSpec:
    """Specification of one Frontier compute node."""

    gpus_per_node: int = constants.GPUS_PER_NODE
    gpu: MI250XSpec = field(default_factory=MI250XSpec)

    # Simple CPU (1x AMD "Trento") power model: idle..full-load range.
    cpu_idle_w: float = 90.0
    cpu_max_w: float = 280.0

    # Residual node power: NICs, fans, board losses.
    overhead_w: float = 120.0

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise SpecError("gpus_per_node must be positive")
        if not (0 <= self.cpu_idle_w <= self.cpu_max_w):
            raise SpecError("need 0 <= cpu_idle_w <= cpu_max_w")

    def cpu_power_w(self, load: float) -> float:
        """CPU package power at a utilization in [0, 1]."""
        load = min(max(load, 0.0), 1.0)
        return self.cpu_idle_w + (self.cpu_max_w - self.cpu_idle_w) * load


#: Shared default instance: the spec is frozen, so every caller can hold
#: the same object — which also lets identity-keyed caches (the batched
#: traffic memo) hit across independently constructed harnesses.
_DEFAULT_SPEC: MI250XSpec | None = None


def default_spec() -> MI250XSpec:
    """The calibrated MI250X module specification used throughout."""
    global _DEFAULT_SPEC
    if _DEFAULT_SPEC is None:
        _DEFAULT_SPEC = MI250XSpec()
    return _DEFAULT_SPEC
