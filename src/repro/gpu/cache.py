"""Memory hierarchy model: L2 cache and HBM.

The model answers two questions for a kernel at a core frequency ``f``:

1. *Where does the traffic land?*  If the kernel pins an explicit
   ``hbm_bytes``/``l2_bytes`` split, that is used directly.  If it instead
   declares a ``working_set_bytes`` (the GPU-benches chunk-cycling pattern,
   Fig 3 of the paper), the L2 hit fraction is ``min(1, L2 / ws)`` — the
   resident prefix of the working set hits, the remainder streams from HBM.

2. *How fast can it move?*  L2 bandwidth scales with the core clock; HBM
   bandwidth does not (down to the issue limit).  Traffic through both
   levels composes *serially* (a miss costs the HBM trip), so effective
   bandwidth is the weighted harmonic mean, further capped by the kernel's
   issue ceiling ``issue_bw_factor * (f/f_max) * B_hbm``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from .kernel import KernelSpec
from .specs import MI250XSpec


@dataclass(frozen=True)
class TrafficSplit:
    """Bytes served by each level and the composed effective bandwidth."""

    l2_bytes: float
    hbm_bytes: float
    l2_hit_fraction: float
    effective_bw: float          # bytes/s over all traffic
    l2_bw: float                 # level bandwidth used for power accounting
    hbm_bw: float
    issue_limited: bool


def l2_hit_fraction(spec: MI250XSpec, working_set_bytes: float) -> float:
    """L2 hit fraction for a chunk-cycling sweep over ``working_set_bytes``.

    Cyclic streaming through a working set is the LRU worst case: once the
    set exceeds capacity, each line is evicted before its next reuse and
    the hit rate collapses rather than degrading as ``capacity / size``.
    The model is exact residency below capacity, a linear collapse over
    one additional capacity (partial retention from the cache's high
    associativity and non-strict replacement), and zero beyond twice the
    capacity — producing the sharp 16 MB knee of the paper's Fig 6.
    """
    if working_set_bytes <= 0:
        raise KernelError("working set must be positive")
    ratio = working_set_bytes / spec.l2_bytes
    if ratio <= 1.0:
        return 1.0
    return max(0.0, 2.0 - ratio)


def l2_bandwidth(spec: MI250XSpec, f_hz: float) -> float:
    """L2 bandwidth at core frequency ``f_hz`` (scales with the clock)."""
    return spec.l2_bw_max * (f_hz / spec.f_max_hz)


def issue_ceiling(spec: MI250XSpec, kernel: KernelSpec, f_hz: float) -> float:
    """Peak request rate the kernel can issue at ``f_hz`` (bytes/s)."""
    return kernel.issue_bw_factor * (f_hz / spec.f_max_hz) * spec.achievable_hbm_bw


def resolve_traffic(
    spec: MI250XSpec, kernel: KernelSpec, f_hz: float
) -> TrafficSplit:
    """Resolve a kernel's memory traffic and effective bandwidth at ``f_hz``.

    Occupancy scales both the issue ceiling and the reachable level
    bandwidths: a kernel that cannot fill the device cannot saturate its
    memory system either.
    """
    occ = kernel.occupancy
    if kernel.working_set_bytes is not None:
        hit = l2_hit_fraction(spec, kernel.working_set_bytes)
        total = kernel.total_bytes
        l2_b = total * hit
        hbm_b = total * (1.0 - hit)
    else:
        l2_b = kernel.l2_bytes
        hbm_b = kernel.hbm_bytes
        total = l2_b + hbm_b
        hit = l2_b / total if total > 0 else 0.0

    bw_l2 = l2_bandwidth(spec, f_hz) * occ
    bw_hbm = spec.achievable_hbm_bw * occ
    ceiling = issue_ceiling(spec, kernel, f_hz) * occ

    if total <= 0:
        return TrafficSplit(0.0, 0.0, 0.0, float("inf"), bw_l2, bw_hbm, False)

    # Serial composition: time per byte is the hit-weighted sum of level
    # costs; the harmonic form below is exactly total / (t_l2 + t_hbm).
    denom = (hit / bw_l2 if hit > 0 else 0.0) + (
        (1.0 - hit) / bw_hbm if hit < 1 else 0.0
    )
    composed = 1.0 / denom if denom > 0 else float("inf")
    effective = min(composed, ceiling)
    return TrafficSplit(
        l2_bytes=l2_b,
        hbm_bytes=hbm_b,
        l2_hit_fraction=hit,
        effective_bw=effective,
        l2_bw=bw_l2,
        hbm_bw=bw_hbm,
        issue_limited=ceiling < composed,
    )
