"""A small set-associative cache simulator.

The analytic L2 hit model in :mod:`repro.gpu.cache` claims that cyclic
chunk streaming (the paper's Fig 3 pattern) hits fully while resident,
collapses over one extra capacity, and misses entirely beyond.  This
module validates that claim by *actually simulating* the reference
stream against a set-associative cache under two replacement policies:

* strict LRU — the textbook cyclic pathology: hit rate drops to ~0 the
  moment the working set exceeds capacity;
* random replacement — closer to GPU L2 behaviour (pseudo-random /
  not-recently-used): hits decay smoothly past capacity.

The analytic model's linear collapse sits between the two, which is the
justification `repro.gpu.cache.l2_hit_fraction` documents.  This is a
validation tool, not a hot path: it walks the address stream one access
at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from ..rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CacheGeometry:
    """Capacity / line / associativity of one cache level."""

    capacity_bytes: int
    line_bytes: int = 128
    ways: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise SpecError("cache geometry must be positive")
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise SpecError(
                "capacity must be a multiple of line_bytes * ways"
            )

    @property
    def n_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.ways)

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes


class SetAssociativeCache:
    """Simulate one cache level over a line-address stream."""

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        policy: str = "lru",
        rng: RngLike = None,
    ) -> None:
        if policy not in ("lru", "random"):
            raise SpecError(f"unknown replacement policy {policy!r}")
        self.geometry = geometry
        self.policy = policy
        self._rng = ensure_rng(rng)
        n_sets, ways = geometry.n_sets, geometry.ways
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0

    def access_lines(self, line_addresses: np.ndarray) -> int:
        """Run a line-address stream; returns the number of hits."""
        tags = self._tags
        stamps = self._stamp
        n_sets = self.geometry.n_sets
        use_lru = self.policy == "lru"
        rng = self._rng
        hits = 0
        clock = self._clock
        for line in np.asarray(line_addresses, dtype=np.int64):
            s = line % n_sets
            row = tags[s]
            clock += 1
            hit_ways = np.flatnonzero(row == line)
            if hit_ways.size:
                hits += 1
                stamps[s, hit_ways[0]] = clock
                continue
            if use_lru:
                victim = int(np.argmin(stamps[s]))
            else:
                victim = int(rng.integers(self.geometry.ways))
            row[victim] = line
            stamps[s, victim] = clock
        self._clock = clock
        return hits


def cyclic_stream(
    working_set_bytes: int, line_bytes: int, rounds: int
) -> np.ndarray:
    """The Fig 3 reference pattern: stream the working set repeatedly."""
    n_lines = max(1, working_set_bytes // line_bytes)
    return np.tile(np.arange(n_lines, dtype=np.int64), rounds)


def cyclic_hit_rate(
    geometry: CacheGeometry,
    working_set_bytes: int,
    *,
    policy: str = "lru",
    rounds: int = 8,
    warmup_rounds: int = 2,
    rng: RngLike = None,
) -> float:
    """Steady-state hit rate of cyclic streaming over a working set."""
    if rounds <= warmup_rounds:
        raise SpecError("need more rounds than warmup")
    cache = SetAssociativeCache(geometry, policy=policy, rng=rng)
    n_lines = max(1, working_set_bytes // geometry.line_bytes)
    cache.access_lines(cyclic_stream(working_set_bytes, geometry.line_bytes,
                                     warmup_rounds))
    measured = rounds - warmup_rounds
    hits = cache.access_lines(
        cyclic_stream(working_set_bytes, geometry.line_bytes, measured)
    )
    return hits / (n_lines * measured)
