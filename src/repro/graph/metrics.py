"""Graph metrics: modularity and degree statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def modularity(
    graph: CSRGraph, communities: np.ndarray, *, resolution: float = 1.0
) -> float:
    """Newman-Girvan modularity of a community assignment.

    ``Q = (1 / 2m) * sum_ij [A_ij - gamma k_i k_j / 2m] delta(c_i, c_j)``
    computed in vectorized form over the directed CSR entries.  The
    resolution parameter ``gamma`` (default 1) tunes community
    granularity: larger values favour smaller communities.
    """
    if resolution <= 0:
        raise GraphError("resolution must be positive")
    communities = np.asarray(communities)
    if communities.shape != (graph.n_vertices,):
        raise GraphError(
            f"communities must have shape ({graph.n_vertices},), "
            f"got {communities.shape}"
        )
    two_m = float(graph.weights.sum())
    if two_m == 0:
        raise GraphError("modularity undefined for an empty graph")
    src, dst, w = graph.edge_arrays()
    internal = w[communities[src] == communities[dst]].sum()
    k = graph.weighted_degrees
    n_comms = int(communities.max()) + 1
    sigma = np.bincount(communities, weights=k, minlength=n_comms)
    return float(
        internal / two_m - resolution * np.sum((sigma / two_m) ** 2)
    )


@dataclass(frozen=True)
class DegreeStats:
    """Degree summary used to characterize GPU workload shape."""

    d_max: int
    d_avg: float
    d_std: float

    @property
    def imbalance(self) -> float:
        """Coefficient of variation: high for power-law networks."""
        return self.d_std / self.d_avg if self.d_avg > 0 else 0.0


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Degree statistics of a graph (d_max, d_avg as the paper quotes)."""
    d = graph.degrees
    if len(d) == 0:
        raise GraphError("empty graph has no degree statistics")
    return DegreeStats(
        d_max=int(d.max()),
        d_avg=float(d.mean()),
        d_std=float(d.std()),
    )
