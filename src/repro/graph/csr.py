"""Compressed Sparse Row graph structure.

The paper's GPU Louvain processes input graphs in CSR format "for more
regular memory access"; this class is that structure: an undirected,
optionally weighted graph stored as ``indptr``/``indices``/``weights``
arrays with both edge directions materialized (each undirected edge
appears twice), which is what GPU kernels iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import GraphError


@dataclass(frozen=True)
class CSRGraph:
    """An undirected graph in CSR form.

    ``indptr`` has length ``n + 1``; ``indices[indptr[u]:indptr[u+1]]`` are
    the neighbours of ``u``; ``weights`` aligns with ``indices``.  Both
    directions of every edge are stored, so ``indices`` has ``2 m``
    entries for ``m`` undirected edges.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr)
        indices = np.asarray(self.indices)
        weights = np.asarray(self.weights)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if len(indptr) < 1 or indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if not np.all(np.diff(indptr) >= 0):
            raise GraphError("indptr must be non-decreasing")
        if indptr[-1] != len(indices):
            raise GraphError("indptr[-1] must equal len(indices)")
        if len(weights) != len(indices):
            raise GraphError("weights must align with indices")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("edge endpoint out of range")
        if len(weights) and weights.min() <= 0:
            raise GraphError("edge weights must be positive")

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def from_edges(
        n_vertices: int,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Build from an undirected edge list.

        Self-loops are dropped, duplicate edges are merged (weights
        summed), and both directions are materialized.
        """
        if n_vertices <= 0:
            raise GraphError("graph needs at least one vertex")
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("sources/targets length mismatch")
        if len(src) and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= n_vertices
        ):
            raise GraphError("edge endpoint out of range")
        w = (
            np.ones(len(src), dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if len(w) != len(src):
            raise GraphError("weights length mismatch")

        keep = src != dst
        src, dst, w = src[keep], dst[keep], w[keep]

        # Canonicalize (lo, hi), merge duplicates by summing weights.
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        key = lo * np.int64(n_vertices) + hi
        order = np.argsort(key, kind="stable")
        key, lo, hi, w = key[order], lo[order], hi[order], w[order]
        if len(key):
            uniq_mask = np.empty(len(key), dtype=bool)
            uniq_mask[0] = True
            np.not_equal(key[1:], key[:-1], out=uniq_mask[1:])
            group = np.cumsum(uniq_mask) - 1
            lo, hi = lo[uniq_mask], hi[uniq_mask]
            w = np.bincount(group, weights=w)

        # Materialize both directions and sort into CSR.
        all_src = np.concatenate([lo, hi])
        all_dst = np.concatenate([hi, lo])
        all_w = np.concatenate([w, w])
        order = np.argsort(all_src, kind="stable")
        all_src, all_dst, all_w = all_src[order], all_dst[order], all_w[order]
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(all_src, minlength=n_vertices), out=indptr[1:])
        return CSRGraph(indptr=indptr, indices=all_dst, weights=all_w)

    # -- properties -------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of *undirected* edges."""
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Unweighted degree of each vertex."""
        return np.diff(self.indptr)

    @property
    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per vertex."""
        n = self.n_vertices
        seg = np.repeat(np.arange(n), self.degrees)
        return np.bincount(seg, weights=self.weights, minlength=n)

    @property
    def total_weight(self) -> float:
        """Total undirected edge weight (each edge counted once)."""
        return float(self.weights.sum()) / 2.0

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(sources, targets, weights) over all *directed* entries."""
        src = np.repeat(np.arange(self.n_vertices), self.degrees)
        return src, self.indices, self.weights

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour ids of vertex ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]
