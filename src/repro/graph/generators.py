"""Synthetic graph generators replacing the paper's SNAP downloads.

The paper evaluates Louvain on networks spanning 3 K - 8 M edges with
degree statistics d_max 9-343 and d_avg 2-23, contrasting a road network
(bounded degree, sparse, imbalanced GPU workload) against social networks
(power-law degrees).  Two generators cover that space:

* :func:`road_network` — a thinned 2D grid with a few long-range
  shortcuts: bounded degree (d_max <= 9), d_avg ~= 2, high diameter;
* :func:`social_network` — a Chung-Lu power-law graph: expected degree
  sequence ``w_i ∝ (i + i0)^(-1/(gamma-1))``, giving heavy-tailed degrees
  with controllable d_avg and d_max.

:func:`paper_suite` instantiates the networks used in Fig 7 at either
full or scaled-down size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import GraphError
from ..rng import RngLike, ensure_rng
from .csr import CSRGraph


def road_network(
    n_edges_target: int, *, rng: RngLike = None, shortcut_fraction: float = 0.002
) -> CSRGraph:
    """A road-like network: thinned grid plus rare shortcuts.

    Grid edges are kept with probability chosen so the expected edge count
    meets ``n_edges_target`` at an average degree near 2 (the paper's road
    network has d_avg = 2, d_max = 9).
    """
    if n_edges_target < 4:
        raise GraphError("road network needs at least 4 edges")
    gen = ensure_rng(rng)
    # A k x k grid has ~2k^2 edges; thin to ~half for d_avg ~= 2.
    keep_p = 0.55
    side = max(2, int(np.sqrt(n_edges_target / (2 * keep_p))))
    n = side * side
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    vid = (ii * side + jj).ravel()

    right_src = vid.reshape(side, side)[:, :-1].ravel()
    right_dst = right_src + 1
    down_src = vid.reshape(side, side)[:-1, :].ravel()
    down_dst = down_src + side
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])

    keep = gen.random(len(src)) < keep_p
    src, dst = src[keep], dst[keep]

    n_short = max(1, int(shortcut_fraction * len(src)))
    s_src = gen.integers(0, n, size=n_short)
    s_dst = gen.integers(0, n, size=n_short)
    src = np.concatenate([src, s_src])
    dst = np.concatenate([dst, s_dst])
    return CSRGraph.from_edges(n, src, dst)


def social_network(
    n_edges_target: int,
    *,
    gamma: float = 2.5,
    mean_degree: float = 12.0,
    rng: RngLike = None,
) -> CSRGraph:
    """A power-law (Chung-Lu) social network.

    Samples ``~n_edges_target`` endpoint pairs with probability
    proportional to a power-law weight sequence; duplicates and self-loops
    are merged/dropped by the CSR constructor, which leaves the realized
    edge count slightly below target — consistent with how the paper
    quotes approximate sizes (3K ... 8M).
    """
    if n_edges_target < 2:
        raise GraphError("social network needs at least 2 edges")
    if gamma <= 2.0:
        raise GraphError("gamma must be > 2 for a finite mean degree")
    if mean_degree <= 0:
        raise GraphError("mean_degree must be positive")
    gen = ensure_rng(rng)
    n = max(4, int(round(2 * n_edges_target / mean_degree)))
    # Power-law expected degrees: w_i ~ (i + i0)^(-1/(gamma-1)).
    exponent = 1.0 / (gamma - 1.0)
    i0 = n * (mean_degree / (2 * n_edges_target)) ** (gamma - 1.0) + 10.0
    w = (np.arange(n) + i0) ** (-exponent)
    p = w / w.sum()
    src = gen.choice(n, size=n_edges_target, p=p)
    dst = gen.choice(n, size=n_edges_target, p=p)
    return CSRGraph.from_edges(n, src, dst)


def rmat_graph(
    n_edges_target: int,
    *,
    scale: int | None = None,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: RngLike = None,
) -> CSRGraph:
    """A Kronecker/R-MAT graph (Graph500-style skewed topology).

    Each edge picks its endpoint bits by recursively descending the 2x2
    probability matrix ``[[a, b], [c, d]]`` (``d = 1 - a - b - c``); the
    default parameters are the Graph500 values, producing the heavy
    community-within-community skew that power-law generators like
    Chung-Lu do not.  Fully vectorized: all edges descend all levels at
    once.
    """
    if n_edges_target < 2:
        raise GraphError("R-MAT needs at least 2 edges")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError("R-MAT probabilities must lie in [0, 1] and sum to 1")
    gen = ensure_rng(rng)
    if scale is None:
        # Graph500 edge factor 16: n = m / 16 vertices.
        scale = max(2, int(np.ceil(np.log2(max(n_edges_target // 16, 4)))))
    n = 1 << scale

    src = np.zeros(n_edges_target, dtype=np.int64)
    dst = np.zeros(n_edges_target, dtype=np.int64)
    for _level in range(scale):
        r = gen.random(n_edges_target)
        # Quadrants: [0,a) -> (0,0); [a,a+b) -> (0,1); [a+b,a+b+c) -> (1,0).
        q_b = (r >= a) & (r < a + b)
        q_c = (r >= a + b) & (r < a + b + c)
        q_d = r >= a + b + c
        src = (src << 1) | (q_c | q_d)
        dst = (dst << 1) | (q_b | q_d)
    return CSRGraph.from_edges(n, src, dst)


@dataclass(frozen=True)
class NamedGraph:
    """A generated network plus its Fig 7 role."""

    name: str
    kind: str          # "road" | "social"
    graph: CSRGraph


def paper_suite(scale: float = 1.0, *, rng: RngLike = None) -> List[NamedGraph]:
    """The Fig 7 network suite.

    ``scale`` shrinks every target edge count (e.g. 0.01 for fast tests);
    the full-size suite matches the paper's 3 K - 8 M edge range with the
    road network at 8 M edges.
    """
    if scale <= 0:
        raise GraphError("scale must be positive")
    gen = ensure_rng(rng)

    def edges(base: int) -> int:
        return max(1000, int(base * scale))

    specs = [
        ("road-8M", "road", edges(8_000_000)),
        ("social-8M", "social", edges(8_000_000)),
        ("social-6M", "social", edges(6_000_000)),
        ("social-2M", "social", edges(2_000_000)),
        ("social-60K", "social", edges(60_000)),
        ("social-3K", "social", max(500, int(3_000 * scale))),
    ]
    out = []
    for name, kind, m in specs:
        if kind == "road":
            g = road_network(m, rng=gen)
        else:
            g = social_network(m, rng=gen)
        out.append(NamedGraph(name=name, kind=kind, graph=g))
    return out


def suite_by_name(scale: float = 1.0, *, rng: RngLike = None) -> Dict[str, NamedGraph]:
    """The Fig 7 suite keyed by network name."""
    return {g.name: g for g in paper_suite(scale, rng=rng)}
