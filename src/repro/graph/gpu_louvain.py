"""GPU execution mapping for Louvain community detection.

The paper's application study runs a HIP Louvain code whose GPU workload
distribution follows vertex degrees: high-degree vertices get a wavefront
(or thread group), sparse vertices a single thread.  That mapping makes
the *kernel character* a function of the network's degree statistics:

* **occupancy** — bounded-degree networks (roads, d_avg ~= 2) leave most
  of the device idle (single thread per vertex, little ILP), which is why
  the paper's 8 M-edge road network peaks at only ~205 W;
* **memory-level parallelism** (``issue_bw_factor``) — grows with average
  degree: many concurrent neighbour gathers per vertex hide latency, so
  social networks are insensitive to the core clock while road networks
  slow down at low frequencies (Fig 7);
* **gather overhead** — irregular neighbour access wastes cache lines;
  the waste grows with degree imbalance (power-law networks).

Each Louvain pass contributes its local-moving sweeps as kernels plus a
host phase (CPU aggregation and PCIe transfers) during which the GPU
idles; the host share is what dilutes the raw kernel-level savings down
to the few-percent application-level numbers of Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gpu import GPUDevice, KernelSpec
from ..gpu.device import KernelResult
from .csr import CSRGraph
from .louvain import LouvainResult, louvain
from .metrics import DegreeStats, degree_stats

#: DRAM traffic per directed edge per sweep: neighbour community gathers
#: are random 8-byte reads that each drag a full cache line, plus edge
#: weight/score traffic — cache-line granularity makes this 64 bytes.
BYTES_PER_EDGE = 64.0

#: Flops per directed edge (the delta-Q score arithmetic).
FLOPS_PER_EDGE = 8.0


@dataclass(frozen=True)
class HostModel:
    """CPU-side cost model for the non-GPU phases of each pass."""

    pcie_bw: float = 25e9            # effective host<->device bandwidth
    bytes_per_edge_transfer: float = 16.0
    aggregation_s_per_edge: float = 3.0e-9   # CPU contraction cost

    def host_time_s(self, n_directed_edges: int) -> float:
        transfer = (
            n_directed_edges * self.bytes_per_edge_transfer / self.pcie_bw
        )
        return transfer + n_directed_edges * self.aggregation_s_per_edge


def kernel_character(stats: DegreeStats) -> dict:
    """Map degree statistics to kernel-character parameters."""
    occupancy = float(np.clip(0.10 + 0.06 * stats.d_avg, 0.10, 0.85))
    issue = float(np.clip(0.95 + 0.065 * stats.d_avg, 1.0, 2.5))
    gather = float(np.clip(1.2 + 0.4 * stats.imbalance, 1.2, 2.4))
    divergence = float(np.clip(0.04 * stats.imbalance, 0.0, 0.35))
    # Low-occupancy (latency-bound) kernels keep wavefronts resident but
    # stalled: they burn core power without retiring flops, which is how
    # the sparse road network reaches ~205 W at trivial DRAM utilization.
    stall = 0.25 * (1.0 - occupancy)
    return {
        "occupancy": occupancy,
        "issue_bw_factor": issue,
        "gather_overhead": gather,
        "divergence": divergence,
        "stall_power_fraction": stall,
    }


def sweep_kernel(
    n_directed_edges: int, stats: DegreeStats, *, level: int, sweep: int
) -> KernelSpec:
    """The local-moving kernel of one sweep at one level."""
    char = kernel_character(stats)
    nbytes = n_directed_edges * BYTES_PER_EDGE * char["gather_overhead"]
    return KernelSpec(
        name=f"louvain-l{level}-s{sweep}",
        flops=n_directed_edges * FLOPS_PER_EDGE,
        hbm_bytes=nbytes,
        issue_bw_factor=char["issue_bw_factor"],
        occupancy=char["occupancy"],
        divergence=char["divergence"],
        stall_power_fraction=char["stall_power_fraction"],
        launch_overhead_s=10e-6,
    )


@dataclass(frozen=True)
class GPULouvainResult:
    """Application-level outcome: real communities, simulated time/power."""

    louvain: LouvainResult
    kernel_results: List[KernelResult] = field(repr=False)
    gpu_time_s: float
    host_time_s: float
    energy_j: float

    @property
    def total_time_s(self) -> float:
        return self.gpu_time_s + self.host_time_s

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.total_time_s

    @property
    def max_power_w(self) -> float:
        return max(r.power_w for r in self.kernel_results)

    @property
    def modularity(self) -> float:
        return self.louvain.modularity


class GPULouvainRunner:
    """Run Louvain on a graph and execute its GPU passes on a device."""

    def __init__(
        self,
        device: Optional[GPUDevice] = None,
        *,
        host_model: Optional[HostModel] = None,
    ) -> None:
        self.device = device if device is not None else GPUDevice()
        self.host_model = host_model if host_model is not None else HostModel()

    def run(
        self,
        graph: CSRGraph,
        *,
        precomputed: Optional[LouvainResult] = None,
    ) -> GPULouvainResult:
        """Detect communities and profile the run on the device.

        ``precomputed`` lets cap sweeps reuse one Louvain execution: the
        algorithmic workload (pass structure) is independent of the cap,
        only the simulated time/power change.
        """
        result = precomputed if precomputed is not None else louvain(graph)
        stats = degree_stats(graph)

        kernel_results: List[KernelResult] = []
        gpu_time = 0.0
        host_time = 0.0
        energy = 0.0
        idle_w = self.device.spec.idle_w
        for p in result.passes:
            for sweep in range(max(1, p.sweeps)):
                k = sweep_kernel(
                    p.n_directed_edges, stats, level=p.level, sweep=sweep
                )
                r = self.device.run(k)
                kernel_results.append(r)
                gpu_time += r.time_s
                energy += r.energy_j
            h = self.host_model.host_time_s(p.n_directed_edges)
            host_time += h
            energy += idle_w * h

        return GPULouvainResult(
            louvain=result,
            kernel_results=kernel_results,
            gpu_time_s=gpu_time,
            host_time_s=host_time,
            energy_j=energy,
        )
