"""Graph substrate: CSR graphs, generators, and Louvain community detection.

This is the "real HPC application" of the paper's Section III-B-c: a
GPU-based Louvain community detection code run on networks spanning road
(bounded-degree) and social (power-law) topologies.  The Louvain algorithm
itself runs for real (communities, modularity, per-pass workloads are
genuine); only the time/power of each GPU pass comes from the simulator
via :mod:`repro.graph.gpu_louvain`.
"""

from .csr import CSRGraph
from .generators import (
    rmat_graph,
    road_network,
    social_network,
    paper_suite,
)
from .louvain import LouvainResult, louvain
from .metrics import degree_stats, modularity
from .gpu_louvain import GPULouvainRunner, GPULouvainResult

__all__ = [
    "CSRGraph",
    "rmat_graph",
    "road_network",
    "social_network",
    "paper_suite",
    "louvain",
    "LouvainResult",
    "modularity",
    "degree_stats",
    "GPULouvainRunner",
    "GPULouvainResult",
]
