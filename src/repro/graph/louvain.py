"""Louvain community detection (vectorized parallel-heuristic variant).

This is a real implementation of the Louvain method [Blondel et al. 2008]
in the synchronous, parallel-local-moving style of the GPU codes the paper
builds on (Lu, Halappanavar, Kalyanaraman 2015): every vertex evaluates
its best neighbouring community against a frozen snapshot, and moves are
applied in two parity phases per sweep to break symmetric oscillations —
the same trick GPU implementations use in place of sequential scans.

All hot paths are NumPy-vectorized (lexsort + reduceat group-by over the
directed edge arrays); no Python loop touches edges.  Each local-moving
pass is followed by graph aggregation, exactly as in classic Louvain, and
the per-pass workload statistics (edges touched, sweeps) are recorded for
the GPU execution mapping in :mod:`repro.graph.gpu_louvain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


@dataclass(frozen=True)
class PassStats:
    """Workload of one Louvain pass (local moving + aggregation)."""

    level: int
    n_vertices: int
    n_directed_edges: int
    sweeps: int
    modularity: float   # level modularity after the pass


@dataclass(frozen=True)
class LouvainResult:
    """Outcome of Louvain community detection."""

    communities: np.ndarray      # original-vertex -> community id (compact)
    modularity: float
    passes: List[PassStats]

    @property
    def n_communities(self) -> int:
        return int(self.communities.max()) + 1 if len(self.communities) else 0


def _compact(labels: np.ndarray) -> np.ndarray:
    """Relabel community ids to 0..k-1 preserving order of first use."""
    _, compact = np.unique(labels, return_inverse=True)
    return compact


def _level_modularity(
    internal_w: float, sigma: np.ndarray, two_m: float, resolution: float
) -> float:
    return internal_w / two_m - resolution * float(
        np.sum((sigma / two_m) ** 2)
    )


def _local_move(
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    k: np.ndarray,
    self_w: np.ndarray,
    two_m: float,
    *,
    max_sweeps: int,
    tol: float,
    resolution: float,
):
    """Parallel local-moving phase at one level.

    Returns (labels, sweeps_used, level_modularity).
    """
    n = len(k)
    c = np.arange(n)
    sigma = k.copy().astype(float)

    def internal_weight(labels):
        return float(w[labels[src] == labels[dst]].sum()) + 2.0 * float(
            self_w.sum()
        )

    q = _level_modularity(internal_weight(c), sigma, two_m, resolution)
    best_q = q
    best_c = c.copy()
    sweeps = 0
    for _ in range(max_sweeps):
        moved_any = False
        for phase in (0, 1):
            # Group directed edges by (source, neighbour community).
            dc = c[dst]
            order = np.lexsort((dc, src))
            s_src = src[order]
            s_comm = dc[order]
            s_w = w[order]
            if len(s_src) == 0:
                break
            new_group = np.empty(len(s_src), dtype=bool)
            new_group[0] = True
            new_group[1:] = (s_src[1:] != s_src[:-1]) | (
                s_comm[1:] != s_comm[:-1]
            )
            starts = np.flatnonzero(new_group)
            w_pair = np.add.reduceat(s_w, starts)
            u_pair = s_src[starts]
            d_pair = s_comm[starts]

            # Score of placing u in community D (sigma without u's own k).
            sigma_adj = sigma[d_pair] - np.where(
                d_pair == c[u_pair], k[u_pair], 0.0
            )
            score = w_pair - resolution * k[u_pair] * sigma_adj / two_m

            # Append explicit "stay" options so isolated-in-community
            # vertices compare against the correct baseline.
            stay_u = np.arange(n)
            stay_d = c
            stay_score = -resolution * k * (sigma[c] - k) / two_m
            # Vertices that do have links into their own community get the
            # real stay score from the grouped pairs; duplicates are fine
            # because the max below picks the larger (identical) one.
            all_u = np.concatenate([u_pair, stay_u])
            all_d = np.concatenate([d_pair, stay_d])
            all_s = np.concatenate([score, stay_score])

            # Per-vertex argmax with deterministic tie-break on community
            # id: sort by (u, -score, d) and take each group's first row.
            order2 = np.lexsort((all_d, -all_s, all_u))
            all_u = all_u[order2]
            all_d = all_d[order2]
            first = np.empty(len(all_u), dtype=bool)
            first[0] = True
            first[1:] = all_u[1:] != all_u[:-1]
            best_d = all_d[first]           # indexed by vertex id (sorted)
            best_u = all_u[first]
            target = np.empty(n, dtype=np.int64)
            target[best_u] = best_d

            move = (target != c) & ((np.arange(n) % 2) == phase)
            if not move.any():
                continue
            moved_any = True
            movers = np.flatnonzero(move)
            np.subtract.at(sigma, c[movers], k[movers])
            np.add.at(sigma, target[movers], k[movers])
            c[movers] = target[movers]

        sweeps += 1
        q_new = _level_modularity(internal_weight(c), sigma, two_m, resolution)
        if q_new > best_q:
            best_q = q_new
            best_c = c.copy()
        if q_new - q < tol or not moved_any:
            break
        q = q_new
    # Synchronous sweeps evaluate moves against a frozen snapshot, so a
    # sweep can occasionally overshoot; returning the best partition seen
    # keeps the per-level modularity monotone across passes.
    return best_c, sweeps, best_q


def _aggregate(src, dst, w, k, self_w, labels):
    """Contract a level by its community labels."""
    labels = _compact(labels)
    n_new = int(labels.max()) + 1
    cu = labels[src]
    cv = labels[dst]
    off_diag = cu != cv
    key = cu[off_diag] * np.int64(n_new) + cv[off_diag]
    uniq, inv = np.unique(key, return_inverse=True)
    new_w = np.bincount(inv, weights=w[off_diag])
    new_src = (uniq // n_new).astype(np.int64)
    new_dst = (uniq % n_new).astype(np.int64)
    internal_directed = np.bincount(
        cu[~off_diag], weights=w[~off_diag], minlength=n_new
    )
    new_self = internal_directed / 2.0 + np.bincount(
        labels, weights=self_w, minlength=n_new
    )
    new_k = np.bincount(labels, weights=k, minlength=n_new)
    return new_src, new_dst, new_w, new_k, new_self, labels


def louvain(
    graph: CSRGraph,
    *,
    max_passes: int = 10,
    max_sweeps: int = 16,
    tol: float = 1e-6,
    resolution: float = 1.0,
) -> LouvainResult:
    """Run Louvain community detection on ``graph``.

    Returns the community assignment of the *original* vertices, the final
    modularity (computed on the original graph), and per-pass workload
    statistics for the GPU execution mapping.
    """
    if graph.n_edges == 0:
        raise GraphError("Louvain needs at least one edge")
    two_m = float(graph.weights.sum())

    src, dst, w = graph.edge_arrays()
    k = graph.weighted_degrees.astype(float)
    self_w = np.zeros(graph.n_vertices)
    overall = np.arange(graph.n_vertices)

    passes: List[PassStats] = []
    prev_q = -1.0
    for level in range(max_passes):
        labels, sweeps, q = _local_move(
            src, dst, w, k, self_w, two_m,
            max_sweeps=max_sweeps, tol=tol, resolution=resolution,
        )
        passes.append(
            PassStats(
                level=level,
                n_vertices=len(k),
                n_directed_edges=len(src),
                sweeps=sweeps,
                modularity=q,
            )
        )
        src, dst, w, k, self_w, labels = _aggregate(
            src, dst, w, k, self_w, labels
        )
        overall = labels[overall]
        if q - prev_q < tol or len(src) == 0:
            break
        prev_q = q

    communities = _compact(overall)
    from .metrics import modularity as graph_modularity

    final_q = graph_modularity(graph, communities, resolution=resolution)
    return LouvainResult(
        communities=communities, modularity=final_q, passes=passes
    )
